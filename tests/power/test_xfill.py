"""Tests for the pluggable X-fill facade."""

import random

import pytest

from repro.power import xfill
from repro.sim import values as V


class TestFacade:
    def test_registry_mirrors_values(self):
        assert xfill.FILL_STRATEGIES == V.FILL_STRATEGIES

    def test_validate_accepts_known(self):
        for strategy in xfill.FILL_STRATEGIES:
            xfill.validate_strategy(strategy)

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="bogus"):
            xfill.validate_strategy("bogus")

    def test_fill_delegates_to_values(self):
        vec = V.vec("x1x0xx")
        for strategy in xfill.FILL_STRATEGIES:
            assert xfill.fill(vec, random.Random(3), strategy) == \
                V.fill_x(vec, random.Random(3), strategy=strategy)

    def test_fill_validates_first(self):
        with pytest.raises(ValueError):
            xfill.fill(V.vec("x"), random.Random(0), "nope")

"""Text serialization of tester programs.

A minimal, diff-friendly exchange format in the spirit of STIL/WGL:
one line per tester cycle, fully capturing scan-in stimulus, expected
scan-out values and functional vectors with expected responses::

    # repro tester program v1
    PROGRAM state_vars=3 cycles=27
    SHIFT in=1 out=x
    SHIFT in=0 out=1
    FUNC pi=0110 po=1x0
    ...

``x`` marks masked/don't-care positions.  :func:`dumps`/:func:`loads`
round-trip exactly; :func:`load`/:func:`dump` work on files.  The
parser validates structure (counts, widths, cycle kinds) and raises
:class:`TestProgramFormatError` with line numbers on any damage --
a corrupted test program must never be applied silently.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..sim import values as V
from .tester import FUNCTIONAL, SHIFT, TesterCycle, TesterProgram

_HEADER = "# repro tester program v1"


class TestProgramFormatError(ValueError):
    """Raised when a serialized tester program cannot be parsed."""


def _bit(value: int) -> str:
    return V.vec_str((value,))


def dumps(program: TesterProgram) -> str:
    """Serialize a tester program to text."""
    lines = [_HEADER,
             f"PROGRAM state_vars={program.n_state_vars} "
             f"cycles={len(program)}"]
    for cycle in program.cycles:
        if cycle.kind == SHIFT:
            lines.append(f"SHIFT in={_bit(cycle.scan_in_bit)} "
                         f"out={_bit(cycle.expected_scan_out_bit)}")
        else:
            po = (V.vec_str(cycle.expected_po)
                  if cycle.expected_po is not None else "")
            lines.append(f"FUNC pi={V.vec_str(cycle.pi_vector)}"
                         + (f" po={po}" if po else ""))
    return "\n".join(lines) + "\n"


def loads(text: str) -> TesterProgram:
    """Parse a serialized tester program.

    Raises
    ------
    TestProgramFormatError
        On any structural damage (bad header, wrong counts, malformed
        lines, invalid logic characters).
    """
    lines = text.splitlines()
    body = [(no, line.strip()) for no, line in enumerate(lines, 1)
            if line.strip() and not line.strip().startswith("#")]
    if not body:
        raise TestProgramFormatError("empty program")
    no, header = body[0]
    if not header.startswith("PROGRAM "):
        raise TestProgramFormatError(f"line {no}: missing PROGRAM header")
    fields = dict(part.split("=", 1) for part in header.split()[1:])
    try:
        n_state_vars = int(fields["state_vars"])
        n_cycles = int(fields["cycles"])
    except (KeyError, ValueError) as exc:
        raise TestProgramFormatError(
            f"line {no}: bad PROGRAM header ({exc})") from None

    program = TesterProgram(n_state_vars=n_state_vars)
    for no, line in body[1:]:
        parts = line.split()
        kind = parts[0]
        fields = dict(part.split("=", 1) for part in parts[1:]
                      if "=" in part)
        try:
            if kind == "SHIFT":
                program.cycles.append(TesterCycle(
                    SHIFT,
                    scan_in_bit=V.lit(fields["in"]),
                    expected_scan_out_bit=V.lit(fields["out"])))
            elif kind == "FUNC":
                po = (V.vec(fields["po"]) if "po" in fields else None)
                program.cycles.append(TesterCycle(
                    FUNCTIONAL,
                    pi_vector=V.vec(fields["pi"]),
                    expected_po=po))
            else:
                raise TestProgramFormatError(
                    f"line {no}: unknown cycle kind {kind!r}")
        except TestProgramFormatError:
            raise
        except (KeyError, ValueError) as exc:
            raise TestProgramFormatError(
                f"line {no}: malformed cycle ({exc})") from None
    if len(program) != n_cycles:
        raise TestProgramFormatError(
            f"header claims {n_cycles} cycles, found {len(program)}")
    return program


def dump(program: TesterProgram, path: Union[str, Path]) -> None:
    """Write a tester program to a file."""
    Path(path).write_text(dumps(program))


def load(path: Union[str, Path]) -> TesterProgram:
    """Read a tester program from a file."""
    return loads(Path(path).read_text())

"""Engine instrumentation: cheap counters for the simulation hot path.

Every :class:`~repro.sim.fault_sim.FaultSimulator` owns a
:class:`SimCounters` instance (callers may share one across simulators)
and bumps it from the inner loops: how many logical frames were
simulated, how many packed words were evaluated (``frames x chunks``),
how many machine bits those words carried, how many faults were
retired before or during a pass, and how many tentative
omission/combination trials the compaction procedures ran.

The point is to make engine work *measurable*: the wide-word fusion
and fault-dropping optimizations claim to reduce words-evaluated and
raise effective machines/word -- these counters are what
``benchmarks/emit_bench.py`` dumps into ``BENCH_engine.json`` and what
the CLI surfaces per circuit, so a perf regression shows up as a
number, not a feeling.

Counting convention
-------------------
* ``frames`` -- logical frames simulated: one per time step of a pass,
  regardless of how many words (chunks) carried the fault set.
* ``words`` -- word evaluations: one per ``eval_frame`` call made on
  behalf of fault simulation (``frames x chunks``, minus early exits).
* ``machines`` -- total faulty-machine bits across evaluated words;
  ``machines / words`` is the effective packing density (the fused
  engine pushes this toward the full fault-set size, the 128-bit
  chunked engine caps it at 127).
* ``faults_dropped`` -- faults retired from simulation because a
  scoreboard already knew them detected, or because an in-pass repack
  removed their machine bits mid-sequence.
* ``repacks`` -- in-pass word compactions performed by
  :meth:`~repro.sim.fault_sim.FaultSimulator.detect`.
* ``detect_passes`` / ``record_passes`` / ``candidate_passes`` --
  calls into :meth:`~repro.sim.fault_sim.FaultSimulator.detect` /
  :meth:`~repro.sim.fault_sim.FaultSimulator.run_with_records` /
  :meth:`~repro.sim.fault_sim.FaultSimulator.detect_candidates`.
* ``omission_trials`` / ``combine_trials`` -- tentative vector
  omissions and pair combinations simulated by Phase 2 / Phase 4.

Phase wall-clock timers
-----------------------
``phase1_s`` .. ``phase4_s`` accumulate wall-clock seconds per paper
phase (Phase 1 scan-in/scan-out selection incl. Step 1, Phase 2
vector omission, Phase 3 top-off incl. the ``tau_seq`` full-set
re-simulation, Phase 4 static compaction).  They are bumped by the
:meth:`SimCounters.phase_timer` context manager from
:func:`repro.core.proposed.run` and surfaced in the CLI "Engine
counters" table and ``CircuitRun`` JSON; checkpoints written before
these fields existed simply lack the keys and render as dashes.

Power-engine counters
---------------------
``power_passes`` counts test-set power measurements (one per
:meth:`~repro.power.activity.ActivityEngine.set_power` call),
``power_words`` the packed frame words the activity engine evaluated,
and ``power_s`` its wall clock (via ``phase_timer("power")``).  Like
the phase timers, these render as dashes for legacy checkpoints.

Backend counters
----------------
``np_passes`` counts pass *chunks* executed by the numpy array
backend (:mod:`repro.sim.npsim`) -- zero under the big-int engines,
so it doubles as a cheap "did the numpy engine actually run?" probe
for tests and benchmarks.  Legacy checkpoints lack the key and
render as dashes.

Trial-batch counters
--------------------
``trial_passes`` counts lane-batched trial passes (one per
:meth:`~repro.sim.fault_sim.FaultSimulator.detect_trials` call and
one per Phase-3 top-off candidate block), ``trial_lanes`` the trials
those passes carried -- ``trial_lanes / trial_passes`` is the
effective trial-batching density.  ``adi_orderings`` counts the
Accidental-Detection-Index ordering decisions applied (fused-word
packing, Phase-3 target order, Phase-1 candidate scoring); it stays
zero unless the ``--adi`` knob is on (or ``--scoap``, which reuses
the packing-order hook when ADI is off).  All three render as
dashes for legacy checkpoints.

Transition-fault counters
-------------------------
``tdf_passes`` counts launch-group capture passes by the
transition-fault simulator (:class:`~repro.delay.transition.
TransitionSim` -- one per packed word of launched faults carried
through the remaining frames), ``tdf_words`` the word evaluations
those passes performed (frames simulated per pass, summed), and
``tdf_s`` the simulator's wall clock (via ``phase_timer("tdf")``).
The good-machine recording pass is excluded: these counters measure
the faulty-capture work the wide-word packing actually shrinks.
Like the other families, all three render as dashes for legacy
checkpoints.

Static fault-space counters
---------------------------
``comb_passes`` counts per-fault faulty evaluations by the PPSFP
combinational simulator (:class:`~repro.sim.comb_sim.CombPatternSim`
-- one per injected fault per pattern block): the cost the
representative-only simulation of equivalence collapsing actually
shrinks, since ``detect_passes`` counts *calls* and is identical
with or without collapsing.  ``untestable_dropped`` counts faults
excluded from simulation because the static analyzer *proved* them
untestable (bumped once per
:meth:`~repro.sim.fault_sim.FaultSimulator.set_untestable`
installation, not per pass).  ``scoap_orderings`` counts SCOAP
difficulty-ordering decisions applied (Phase-1 candidate scoring,
Phase-3 top-off order); zero unless the ``--scoap`` knob is on.
All render as dashes for legacy checkpoints.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict

#: Phases :meth:`SimCounters.phase_timer` accepts.
PHASE_NAMES = ("phase1", "phase2", "phase3", "phase4", "power", "tdf")


@dataclass
class SimCounters:
    """Mutable engine counters (see module docstring for semantics)."""

    frames: int = 0
    words: int = 0
    machines: int = 0
    faults_dropped: int = 0
    repacks: int = 0
    detect_passes: int = 0
    record_passes: int = 0
    candidate_passes: int = 0
    omission_trials: int = 0
    combine_trials: int = 0
    phase1_s: float = 0.0
    phase2_s: float = 0.0
    phase3_s: float = 0.0
    phase4_s: float = 0.0
    power_passes: int = 0
    power_words: int = 0
    power_s: float = 0.0
    tdf_passes: int = 0
    tdf_words: int = 0
    tdf_s: float = 0.0
    np_passes: int = 0
    trial_passes: int = 0
    trial_lanes: int = 0
    adi_orderings: int = 0
    comb_passes: int = 0
    untestable_dropped: int = 0
    scoap_orderings: int = 0

    # ------------------------------------------------------------------
    def note_words(self, n_words: int, n_machines: int) -> None:
        """Record ``n_words`` word evaluations carrying ``n_machines``
        machine bits each."""
        self.words += n_words
        self.machines += n_words * n_machines

    @property
    def machines_per_word(self) -> float:
        """Effective packing density (0.0 before any work)."""
        if not self.words:
            return 0.0
        return self.machines / self.words

    @contextmanager
    def phase_timer(self, phase: str):
        """Accumulate the wall clock of the ``with`` body into
        ``<phase>_s``.  ``phase`` must be one of :data:`PHASE_NAMES`.
        Re-entrant use double-counts; the pipeline times disjoint
        stages only.
        """
        if phase not in PHASE_NAMES:
            raise ValueError(f"unknown phase {phase!r}; "
                             f"use one of {PHASE_NAMES}")
        attr = f"{phase}_s"
        started = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, attr,
                    getattr(self, attr) + time.perf_counter() - started)

    # ------------------------------------------------------------------
    def merge(self, other: "SimCounters") -> None:
        """Accumulate ``other`` into this instance."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> "SimCounters":
        """An independent copy (for before/after deltas)."""
        return SimCounters(**{f.name: getattr(self, f.name)
                              for f in fields(self)})

    def delta(self, since: "SimCounters") -> "SimCounters":
        """Counters accumulated since the ``since`` snapshot."""
        return SimCounters(**{
            f.name: getattr(self, f.name) - getattr(since, f.name)
            for f in fields(self)})

    def brief(self) -> Dict[str, float]:
        """Compact progress snapshot for heartbeat messages.

        Heartbeats fire every second or so over the worker pipe; the
        full :meth:`as_dict` dump would be mostly noise there, so this
        carries only the counters a supervisor (or a human watching the
        job summary) can read progress from.
        """
        return {
            "frames": self.frames,
            "words": self.words,
            "faults_dropped": self.faults_dropped,
            "detect_passes": self.detect_passes,
        }

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view, including the derived packing density.

        Timer fields are rounded to microseconds so checkpoint JSON
        stays stable across load/save cycles.
        """
        out: Dict[str, float] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = round(value, 6) if isinstance(value, float) \
                else value
        out["machines_per_word"] = round(self.machines_per_word, 2)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "SimCounters":
        """Inverse of :meth:`as_dict` (derived keys ignored; timer
        fields keep their float type, counters coerce to int)."""
        converters = {f.name: (float if isinstance(f.default, float)
                               else int) for f in fields(cls)}
        return cls(**{k: conv(data[k]) for k, conv in converters.items()
                      if k in data})

"""Targeted sequential test generation by time-frame expansion.

The deterministic half of a sequential ATPG (the role STRATEGATE's
and PROPTEST's directed phases play): given the circuit's *current*
state, find a short primary-input subsequence that detects a specific
still-undetected fault at a primary output within ``depth`` clock
cycles.

The circuit is unrolled ``depth`` times into a purely combinational
model: frame-0 flip-flop values become pseudo inputs (fixed to the
known state), each later frame's flip-flop value is a buffer from the
previous frame's data net, and every frame's primary outputs are
observable.  A stuck-at fault is permanent, so it is injected into
*every* frame copy; activation is attempted frame by frame.  PODEM
(:meth:`repro.atpg.podem.Podem.generate_spec` with the multi-site
spec and the fixed state assignment) then searches for the input
assignment.

The sequence generator uses this to rescue faults its greedy phase
cannot reach (see ``generate_sequence(..., targeted=True)``), which is
what gives the ATPG arm its edge over plain random sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.netlist import Netlist
from ..sim import values as V
from ..sim.faults import Fault, FaultSet
from ..sim.logicsim import CompiledCircuit
from .podem import ABORTED, Podem, PodemResult, TESTABLE


def unroll(netlist: Netlist, depth: int) -> Netlist:
    """Combinational ``depth``-frame expansion of a sequential circuit.

    Net ``n`` of frame ``t`` is named ``n@t``.  Frame-0 flip-flop
    outputs become primary inputs; frame ``t>0`` flip-flop outputs are
    buffers of frame ``t-1`` data nets.  All frames' primary outputs
    are outputs.

    Raises
    ------
    ValueError
        If ``depth`` is not positive.
    """
    if depth < 1:
        raise ValueError("unroll depth must be positive")
    if not netlist.is_compiled():
        netlist.compile()
    out = Netlist(f"{netlist.name}_x{depth}")
    for t in range(depth):
        for pi in netlist.inputs:
            out.add_input(f"{pi}@{t}")
    for ff in netlist.flip_flops:
        out.add_input(f"{ff}@0")
    for t in range(depth):
        for ff in netlist.flip_flops:
            if t > 0:
                d_net = netlist.gates[ff].fanins[0]
                out.add_gate(f"{ff}@{t}", "BUF", [f"{d_net}@{t-1}"])
        for gname in netlist.order:
            gate = netlist.gates[gname]
            out.add_gate(f"{gname}@{t}", gate.gtype,
                         [f"{fin}@{t}" for fin in gate.fanins])
        for po in netlist.outputs:
            out.add_output(f"{po}@{t}")
    return out.compile()


@dataclass
class ExtensionResult:
    """A successful targeted extension."""

    vectors: List[V.Vector]      # fully specified, X-filled
    activation_frame: int
    backtracks: int


class TargetedExtender:
    """Per-circuit engine for targeted sequence extensions."""

    def __init__(self, netlist: Netlist, depth: int = 4,
                 backtrack_limit: int = 192, seed: int = 0,
                 x_fill: str = "random") -> None:
        self.netlist = netlist
        self.depth = depth
        # How extracted vectors' don't-cares are filled (see
        # repro.sim.values.fill_x); "random" keeps the historical
        # rng-consumption and output byte-identical.
        self.x_fill = x_fill
        self.unrolled = unroll(netlist, depth)
        self.circuit = CompiledCircuit(self.unrolled)
        # PODEM needs only the circuit; specs are supplied per query.
        self.podem = Podem(self.circuit, FaultSet([]),
                           backtrack_limit=backtrack_limit)
        self._rng = random.Random(seed)
        ids = self.unrolled.net_ids
        self._state_ids = [ids[f"{ff}@0"] for ff in netlist.flip_flops]
        self._pi_ids = [[ids[f"{pi}@{t}"] for pi in netlist.inputs]
                        for t in range(depth)]

    # ------------------------------------------------------------------
    def _spec_for(self, fault: Fault, activation: int) -> Optional[Tuple]:
        """Unrolled injection spec for ``fault`` activated at frame
        ``activation``; ``None`` when the fault has no effect within
        the window (e.g. a data-pin fault on the last frame)."""
        ids = self.unrolled.net_ids
        stuck = fault.stuck
        mask = 2  # the faulty machine bit in PODEM's dual encoding
        if fault.pin is None:
            stems = {ids[f"{fault.net}@{t}"]: ((mask, 0) if stuck == 0
                                               else (0, mask))
                     for t in range(self.depth)}
            site = ids[f"{fault.net}@{activation}"]
            return (site, stuck, stems, {}, None)
        gate_name, pin = fault.pin
        gate = self.netlist.gates[gate_name]
        m0 = mask if stuck == 0 else 0
        m1 = mask if stuck == 1 else 0
        if gate.gtype == "DFF":
            # The capture into frame t+1's buffer is the faulted pin.
            if self.depth < 2:
                return None
            branch = {ids[f"{gate_name}@{t}"]: [(0, m0, m1)]
                      for t in range(1, self.depth)}
            activation = min(activation, self.depth - 2)
            site = ids[f"{fault.net}@{activation}"]
            return (site, stuck, {}, branch, None)
        branch = {ids[f"{gate_name}@{t}"]: [(pin, m0, m1)]
                  for t in range(self.depth)}
        site = ids[f"{fault.net}@{activation}"]
        return (site, stuck, {}, branch, None)

    def try_fault(self, fault: Fault,
                  state: V.Vector) -> Optional[ExtensionResult]:
        """Search for a detecting subsequence from ``state``.

        Activation is attempted at each frame in turn (earliest first,
        so successful extensions tend to be short).  Returns ``None``
        when every attempt fails or aborts.

        Raises
        ------
        ValueError
            If ``state`` is not fully specified (the extender starts
            from a *known* simulation state).
        """
        if not V.is_binary(state):
            raise ValueError("targeted extension needs a binary state")
        fixed = {nid: val for nid, val in zip(self._state_ids, state)}
        for activation in range(self.depth):
            spec = self._spec_for(fault, activation)
            if spec is None:
                return None
            result = self.podem.generate_spec(spec, fixed=fixed)
            if result.status == TESTABLE:
                return ExtensionResult(
                    vectors=self._extract_vectors(result),
                    activation_frame=activation,
                    backtracks=result.backtracks,
                )
        return None

    def _extract_vectors(self, result: PodemResult) -> List[V.Vector]:
        """Frame-by-frame PI vectors from a PODEM pattern, X-filled."""
        _, flat_pi = result.pattern
        ids = {nid: val for nid, val
               in zip((nid for nid in self.circuit.pi_ids), flat_pi)}
        vectors = []
        for frame_ids in self._pi_ids:
            vec = tuple(ids.get(nid, V.X) for nid in frame_ids)
            vectors.append(V.fill_x(vec, self._rng,
                                    strategy=self.x_fill))
        return vectors

"""Phase 2: vector omission (ref [8] style static sequence compaction).

The contract from the paper: starting from ``tau_SO = (SI, T_SO)``
detecting ``F_SO``, omit as many vectors from ``T_SO`` as possible
without losing the detection of any fault in ``F_SO``.  (Omission may
*add* detections -- [8] notes the same -- the caller re-simulates at
the end to collect them.)

The search here differs from [8]'s restoration ordering but honours
the identical contract: a *block-first* greedy sweep from the tail.
At each position we first try to drop a whole block of vectors
(halving block sizes down to 1); every tentative drop is accepted only
if the shortened test still detects all required faults.

Removing vectors at position ``p`` leaves frames ``0..p-1`` untouched,
so the sweep keeps per-frame checkpoints (flip-flop state words and
cumulative PO-detection masks per fault word) and re-simulates only
the suffix of each tentative test -- an order-of-magnitude saving over
re-simulating from frame 0 for long sequences.

Word packing follows the simulator's policy: under ``width="auto"``
the whole required set rides in one fused word, so each tentative
omission costs a single suffix pass instead of one per 128-bit chunk.
Every tentative omission bumps
:attr:`~repro.sim.counters.SimCounters.omission_trials` and the
suffix passes are accounted as words/frames on the simulator's
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..sim import values as V
from ..sim.fault_sim import FaultSimulator, _Chunk
from .scan_test import ScanTest


@dataclass
class OmissionResult:
    """Outcome of a vector-omission run.

    Attributes
    ----------
    test:
        The shortened test ``tau_C = (SI, T_C)``.
    detected:
        Faults (within the required set) the shortened test detects --
        always a superset of the ``required`` argument.
    trials:
        Number of tentative omissions simulated.
    omitted:
        Number of vectors removed.
    """

    test: ScanTest
    detected: Set[int]
    trials: int
    omitted: int


class _CheckpointedRun:
    """Per-chunk frame checkpoints for suffix-only re-simulation.

    ``states[f]`` holds, per chunk, the flip-flop word pair *after*
    frame ``f`` (index 0 is the scan-in state, before any frame) and
    the cumulative PO-detection mask up to and including frame ``f``.
    """

    def __init__(self, sim: FaultSimulator, scan_in: V.Vector,
                 chunks: List[_Chunk]) -> None:
        self.sim = sim
        self.circuit = sim.circuit
        self.chunks = chunks
        self.scan_in = sim.embed_state(scan_in)
        self.scan_observe = (sim.scan_positions
                             if sim.scan_positions is not None
                             else range(len(sim.circuit.ff_ids)))
        init = []
        for chunk in chunks:
            ff_zero = []
            ff_one = []
            for val in self.scan_in:
                z, o = V.pack_scalar(val, chunk.mask)
                ff_zero.append(z)
                ff_one.append(o)
            init.append((ff_zero, ff_one, 0))
        self.states: List[List[Tuple[List[int], List[int], int]]] = [init]

    def _run_suffix(self, chunk_index: int, start_frame: int,
                    vectors: Sequence[V.Vector], record: bool
                    ) -> Tuple[int, int, List[Tuple]]:
        """Simulate ``vectors`` for one chunk from checkpoint
        ``start_frame``; returns (po_caught, final_scan_diff, trail).

        ``trail`` holds the per-frame checkpoint tuples when ``record``.
        """
        sim = self.sim
        circuit = self.circuit
        chunk = self.chunks[chunk_index]
        ff_zero, ff_one, caught = self.states[start_frame][chunk_index]
        if not record and vectors:
            backend = sim._array_backend_for(len(chunk.indices))
            if backend is not None and backend.kernel_available:
                # Array fast path: same loop inside the C kernel, with
                # the last-frame scan-out diff folded into the caught
                # mask (the caller ORs the two anyway).
                mask, frames_run = backend.run_suffix_chunk(
                    sim, chunk, vectors, ff_zero, ff_one, caught,
                    sim.scan_positions)
                if chunk_index == 0:
                    sim.counters.frames += frames_run
                return mask, 0, []
        zero = [0] * circuit.n_nets
        one = [0] * circuit.n_nets
        for nid, z, o in zip(circuit.ff_ids, ff_zero, ff_one):
            zero[nid], one[nid] = z, o
        trail: List[Tuple] = []
        scan_diff = 0
        last = len(vectors) - 1
        full = chunk.mask & ~1
        frames_run = 0
        for frame, vector in enumerate(vectors):
            sim._load_frame(chunk, zero, one, vector)
            circuit.eval_frame(zero, one, chunk.mask, chunk.stems,
                               chunk.branch)
            frames_run += 1
            ns_zero, ns_one = sim._next_state_words(chunk, zero, one)
            for nid in circuit.po_ids:
                caught |= sim._diff_word(zero[nid], one[nid])
            caught &= ~1  # the good machine (bit 0) never "detects"
            if frame == last:
                for pos in self.scan_observe:
                    scan_diff |= sim._diff_word(ns_zero[pos],
                                                ns_one[pos])
                scan_diff &= ~1
            if record:
                trail.append((list(ns_zero), list(ns_one), caught))
            elif caught == full:
                # Every machine is already PO-caught: the verdict of
                # this tentative omission cannot change, so the rest
                # of the suffix (and its scan-out) need not run.
                break
            for nid, z, o in zip(circuit.ff_ids, ns_zero, ns_one):
                zero[nid], one[nid] = z, o
        sim.counters.note_words(frames_run, len(chunk.indices))
        if chunk_index == 0:
            sim.counters.frames += frames_run
        return caught, scan_diff, trail

    def detected_by(self, start_frame: int,
                    suffix: Sequence[V.Vector]) -> Set[int]:
        """Faults detected by checkpoint-prefix + ``suffix`` test."""
        detected: Set[int] = set()
        for ci, chunk in enumerate(self.chunks):
            full = chunk.mask & ~1
            if suffix:
                if self.states[start_frame][ci][2] == full:
                    # Every fault of this chunk is already PO-detected
                    # within the untouched prefix: no need to simulate.
                    detected.update(chunk.indices)
                    continue
                caught, scan_diff, _ = self._run_suffix(ci, start_frame,
                                                        suffix, False)
                mask = caught | scan_diff
            else:
                # Scan-out right at the checkpoint: state diff equals
                # the checkpointed FF words versus good machine.
                ff_zero, ff_one, caught = self.states[start_frame][ci]
                sdiff = 0
                for pos in self.scan_observe:
                    sdiff |= self.sim._diff_word(ff_zero[pos],
                                                 ff_one[pos])
                mask = caught | (sdiff & ~1)
            for pos, fid in enumerate(chunk.indices):
                if mask & chunk.bit_of(pos):
                    detected.add(fid)
        return detected

    def rebuild(self, start_frame: int,
                suffix: Sequence[V.Vector]) -> None:
        """Adopt prefix+suffix as the new current sequence, extending
        checkpoints past ``start_frame`` from the recorded trail."""
        del self.states[start_frame + 1:]
        trails = []
        for ci in range(len(self.chunks)):
            _, _, trail = self._run_suffix(ci, start_frame, suffix, True)
            trails.append(trail)
        for f in range(len(suffix)):
            self.states.append([trails[ci][f]
                                for ci in range(len(self.chunks))])


def omit_vectors(
    sim: FaultSimulator,
    test: ScanTest,
    required: Set[int],
    initial_block: int = 16,
    passes: int = 2,
    retire_to=None,
) -> OmissionResult:
    """Shorten ``test`` while preserving detection of ``required``.

    Parameters
    ----------
    sim:
        Fault simulator for the circuit.
    test:
        The test to compact.
    required:
        Fault indices whose detection must be preserved (``F_SO``).
    initial_block:
        Largest omission block tried (halved on failure down to 1).
    passes:
        Number of full sweeps; a second sweep often finds vectors that
        became redundant after earlier removals.
    retire_to:
        Optional :class:`~repro.sim.scoreboard.FaultScoreboard`; the
        shortened test's detections are retired into it (the caller
        asserts the result is committed to the final test set).

    Raises
    ------
    ValueError
        If the input test does not detect all required faults.
    """
    vectors: List[V.Vector] = [tuple(v) for v in test.vectors]
    chunks = sim._build_chunks(sorted(required))
    run = _CheckpointedRun(sim, test.scan_in, chunks)
    run.rebuild(0, vectors)
    baseline = run.detected_by(len(vectors), [])
    if not required <= baseline:
        missing = len(required - baseline)
        raise ValueError(f"input test misses {missing} required faults")

    trials = 0
    removed_total = 0
    for _ in range(max(1, passes)):
        removed_this_pass = 0
        position = len(vectors) - 1
        while position >= 0 and len(vectors) > 1:
            block_cap = min(initial_block, position + 1,
                            len(vectors) - 1)
            accepted = False
            block = block_cap
            while block >= 1:
                start = position - block + 1
                suffix = vectors[position + 1:]
                trials += 1
                sim.counters.omission_trials += 1
                detected = run.detected_by(start, suffix)
                if required <= detected:
                    vectors = vectors[:start] + suffix
                    run.rebuild(start, suffix)
                    removed_this_pass += block
                    position = start - 1
                    accepted = True
                    break
                block //= 2
            if not accepted:
                position -= 1
        removed_total += removed_this_pass
        if removed_this_pass == 0:
            break

    final_detected = run.detected_by(len(vectors), [])
    if retire_to is not None:
        retire_to.retire(final_detected)
    result_test = ScanTest(test.scan_in, tuple(vectors))
    return OmissionResult(result_test, final_detected, trials,
                          removed_total)

"""Phase 1 of the paper's procedure: from a sequence to a scan test.

Given an initial primary-input sequence ``T0`` and a combinational test
set ``C`` (the pool of candidate scan-in states), Phase 1:

* **Step 1** fault simulates ``T0`` without scan (all-X initial state)
  to find ``F0`` -- detected regardless of the scan-in state;
* **Step 2** selects the scan-in state ``SI`` among the state parts of
  ``C`` maximizing the faults detected by ``(SI, T0)`` with a trailing
  scan-out (only ``F - F0`` needs simulating); ties prefer *unselected*
  tests, and choosing an already-selected test signals termination of
  the Phase 1+2 iteration (paper Section 3.3);
* **Step 3** picks the earliest scan-out time unit ``u_SO`` that loses
  no fault of ``F_SI``, truncating ``T0`` to ``T_SO``.  This is done
  with a single recorded simulation pass
  (:meth:`repro.sim.fault_sim.FaultSimulator.run_with_records`), whose
  post-pass is exactly the paper's candidate scan over
  ``tau_SO,i = (SI, T0[0, i])``.

Fault dropping in Phase 1 is deliberately limited to the paper's own
``F0`` exclusion (Step 2 simulates only ``F - F0``): the scan-in
selection argmax needs *exact per-candidate detection counts* and
Step 3 needs records over the full target, so a cross-phase
scoreboard may not shrink these targets without changing the chosen
``SI``/``u_SO``.  The iteration driver in :mod:`repro.core.proposed`
retires faults into the shared scoreboard only once the surviving
``tau_seq`` is committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..atpg.comb_set import CombTest
from ..sim import values as V
from ..sim.fault_sim import FaultSimulator

#: Valid ``candidate_scan`` modes for Step 2: ``"scalar"`` runs one
#: :meth:`~repro.sim.fault_sim.FaultSimulator.detect` pass per unique
#: candidate state; ``"lanes"`` runs the transposed candidate-parallel
#: :meth:`~repro.sim.fault_sim.FaultSimulator.detect_candidates` pass.
#: Both produce byte-identical ``(chosen_index, f_si)``.
CANDIDATE_SCAN_MODES = ("scalar", "lanes")

#: Default Step-2 mode.  ``"lanes"`` because the equivalence suite
#: (tests/core/test_candidate_scan.py) proves it exact and it turns
#: ``|C|`` sequence passes into ``ceil(F/groups)`` passes.
DEFAULT_CANDIDATE_SCAN = "lanes"


@dataclass
class Phase1Result:
    """Everything Phase 1 produced.

    Attributes
    ----------
    scan_in:
        The selected scan-in vector ``SI``.
    chosen_index:
        Index into ``C`` of the test supplying ``SI``.
    chose_selected:
        True when the winner was already marked *selected* -- the
        iteration-termination signal of Section 3.3.
    vectors:
        ``T_SO``: the prefix of ``T0`` ending at the scan-out time unit.
    u_so:
        The scan-out time unit (0-based, as in the paper).
    f0:
        Faults detected by ``T0`` without scan (Step 1).
    f_si:
        Faults detected by ``(SI, T0)`` with trailing scan-out (Step 2).
    f_so:
        Faults detected by ``(SI, T_SO)`` -- a superset of ``f_si``.
    """

    scan_in: V.Vector
    chosen_index: int
    chose_selected: bool
    vectors: Tuple[V.Vector, ...]
    u_so: int
    f0: Set[int]
    f_si: Set[int]
    f_so: Set[int]


def detect_no_scan(sim: FaultSimulator, t0: Sequence[V.Vector],
                   target: Optional[Sequence[int]] = None) -> Set[int]:
    """Step 1: faults detected by ``T0`` without using scan."""
    return sim.detect(list(t0), init_state=None, target=target,
                      scan_out=False, early_exit=False)


def select_scan_in(
    sim: FaultSimulator,
    t0: Sequence[V.Vector],
    comb_tests: Sequence[CombTest],
    f0: Set[int],
    selected: Sequence[bool],
    target: Optional[Set[int]] = None,
    mode: str = DEFAULT_CANDIDATE_SCAN,
    adi: Optional[Dict[int, int]] = None,
    scoap: Optional[Dict[int, int]] = None,
) -> Tuple[int, Set[int]]:
    """Step 2: choose the scan-in state maximizing detection.

    Distinct tests of ``C`` often share a state part; each *unique*
    state is simulated exactly once (one lane in ``"lanes"`` mode, one
    :meth:`~repro.sim.fault_sim.FaultSimulator.detect` pass in
    ``"scalar"`` mode) and the argmax then replays the original loop
    over all of ``C``, so the winner -- including the
    unselected-preferred tie-break -- is byte-identical to simulating
    every test separately.

    Parameters
    ----------
    sim:
        Simulator over the full target fault set.
    t0:
        The initial sequence.
    comb_tests:
        The combinational test set ``C``; state parts are candidates.
    f0:
        Step-1 detections (excluded from candidate simulation -- they
        are detected for any scan-in state).
    selected:
        Per-test *selected* flags (Section 3.3 bookkeeping).
    target:
        The full target fault index set; defaults to all faults.
    mode:
        One of :data:`CANDIDATE_SCAN_MODES`.
    adi:
        Optional fault index -> Accidental Detection Index map (see
        :meth:`~repro.sim.scoreboard.FaultScoreboard.record_adi`).
        When given, the argmax prefers -- among candidates with equal
        detection *count* -- the one detecting more never-accidentally-
        detected (ADI zero, i.e. random-resistant) faults, before the
        paper's unselected-preferred tie-break.  ``None`` (the
        default) keeps the paper's selection byte-identical.
    scoap:
        Optional fault index -> SCOAP difficulty map (see
        :meth:`~repro.analysis.scoap.ScoapMeasures.difficulty`).  When
        given, candidates with equal weighted count prefer the larger
        summed difficulty over their detections -- the static pre-ADI
        tie-break: claim the statically-hard faults while a candidate
        for them exists.  Ranks ahead of the ADI hard-count in the
        tie-break chain (the static signal exists before any random-
        phase census does; ADI then refines among SCOAP ties).
        ``None`` (the default) keeps the selection byte-identical.

    Returns
    -------
    (chosen_index, f_si):
        Winning test index and the detected set of ``(SI, T0)``
        including ``f0``.

    Raises
    ------
    ValueError
        If ``comb_tests`` is empty, flag/test lengths mismatch, or the
        mode is unknown.
    """
    if not comb_tests:
        raise ValueError("combinational test set is empty")
    if len(selected) != len(comb_tests):
        raise ValueError("selected flags do not match the test set")
    if mode not in CANDIDATE_SCAN_MODES:
        raise ValueError(f"unknown candidate-scan mode {mode!r}; "
                         f"use one of {CANDIDATE_SCAN_MODES}")
    if target is None:
        target = set(range(len(sim.faults)))
    remaining = sorted(target - f0)
    t0_list = list(t0)
    # Deduplicate state parts: simulate each unique state once, in
    # first-appearance order so slot k is the first test using it.
    slot_by_state: dict = {}
    slot_of: List[int] = []
    unique_states: List[V.Vector] = []
    for test in comb_tests:
        state = tuple(test.state)
        slot = slot_by_state.get(state)
        if slot is None:
            slot = len(unique_states)
            slot_by_state[state] = slot
            unique_states.append(state)
        slot_of.append(slot)
    if mode == "lanes":
        per_slot = sim.detect_candidates(t0_list, unique_states,
                                         target=remaining, scan_out=True)
    else:
        per_slot = [sim.detect(t0_list, init_state=state,
                               target=remaining, scan_out=True,
                               early_exit=False)
                    for state in unique_states]
    if adi is None:
        hard_of_slot = [0] * len(per_slot)
    else:
        # Hard-fault score per candidate: detections whose ADI is zero
        # (never accidentally caught in the random phase).  A hard
        # detection is worth double in the argmax -- such faults have
        # the fewest alternative detections, so claiming them here
        # spares Phase 3 a dedicated top-off test.  ``hard_of_slot``
        # stays all-zero without ADI, keeping adi=None byte-identical.
        hard_of_slot = [sum(1 for f in dets if adi.get(f, 0) == 0)
                        for dets in per_slot]
        sim.counters.adi_orderings += 1
    if scoap is None:
        scoap_of_slot = [0] * len(per_slot)
    else:
        # Static difficulty score per candidate: the summed SCOAP
        # difficulty of its detections.  A pure tie-break (never
        # weighted into the count), so ``scoap=None`` stays
        # byte-identical; all-zero maps degrade to the same.
        scoap_of_slot = [sum(scoap.get(f, 0) for f in dets)
                         for dets in per_slot]
        sim.counters.scoap_orderings += 1
    best_index = -1
    best_key = (-1, -1, -1, False)
    for j in range(len(comb_tests)):
        slot = slot_of[j]
        # Maximize the weighted count (plain count without ADI); among
        # equals prefer static difficulty, then hard-fault coverage,
        # then unselected tests.  Strict > keeps the paper's
        # first-wins tie behavior.
        key = (len(per_slot[slot]) + hard_of_slot[slot],
               scoap_of_slot[slot], hard_of_slot[slot], not selected[j])
        if key > best_key:
            best_index, best_key = j, key
    return best_index, per_slot[slot_of[best_index]] | f0


def select_scan_out(
    sim: FaultSimulator,
    scan_in: V.Vector,
    t0: Sequence[V.Vector],
    f_si: Set[int],
    target: Optional[Set[int]] = None,
    rule: str = "earliest",
) -> Tuple[int, Set[int]]:
    """Step 3: select the scan-out time unit.

    ``rule="earliest"`` is the paper's ``i0`` choice: the smallest time
    unit losing no fault of ``F_SI``.  ``rule="max_coverage"`` is the
    ``i1`` alternative the paper discusses (and rejects) in Section
    3.1: among all safe candidates, maximize the detected set and break
    ties toward the smallest time unit.  Both are computed from one
    recorded pass.

    Returns ``(u_so, f_so)`` where ``f_so`` is the full detected set of
    the truncated test over ``target`` (the paper's ``F_SO,i``).

    Raises
    ------
    ValueError
        On an unknown rule.
    """
    if target is None:
        target = set(range(len(sim.faults)))
    records = sim.run_with_records(list(t0), init_state=scan_in,
                                   target=sorted(target | f_si))
    if rule == "earliest":
        return records.earliest_safe_scanout(f_si)
    if rule == "max_coverage":
        best: Optional[Tuple[int, Set[int]]] = None
        for i in range(records.n_frames):
            detected = records.detected_with_scanout_at(i)
            if not f_si <= detected:
                continue
            if best is None or len(detected) > len(best[1]):
                best = (i, detected)
        if best is None:
            raise ValueError("required faults not detected by the "
                             "full test")
        return best
    raise ValueError(f"unknown scan-out rule {rule!r}")


def run_phase1(
    sim: FaultSimulator,
    t0: Sequence[V.Vector],
    comb_tests: Sequence[CombTest],
    selected: Sequence[bool],
    target: Optional[Set[int]] = None,
    f0: Optional[Set[int]] = None,
    scan_out_rule: str = "earliest",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    adi: Optional[Dict[int, int]] = None,
    scoap: Optional[Dict[int, int]] = None,
) -> Phase1Result:
    """Run Steps 1-3 and assemble a :class:`Phase1Result`.

    ``f0`` may be supplied when the caller has already simulated the
    no-scan detections (the iteration loop reuses them).
    ``scan_out_rule`` selects the paper's ``i0`` ("earliest") or
    ``i1`` ("max_coverage") Step-3 variant.  ``candidate_scan``
    selects the Step-2 engine mode (see :data:`CANDIDATE_SCAN_MODES`).
    ``adi`` threads an Accidental-Detection-Index map and ``scoap`` a
    static-difficulty map into the Step-2 tie-break (see
    :func:`select_scan_in`).
    """
    if target is None:
        target = set(range(len(sim.faults)))
    if f0 is None:
        f0 = detect_no_scan(sim, t0, sorted(target))
    index, f_si = select_scan_in(sim, t0, comb_tests, f0, selected,
                                 target, mode=candidate_scan, adi=adi,
                                 scoap=scoap)
    scan_in = comb_tests[index].state
    u_so, f_so = select_scan_out(sim, scan_in, t0, f_si, target,
                                 rule=scan_out_rule)
    vectors = tuple(tuple(v) for v in t0[:u_so + 1])
    return Phase1Result(
        scan_in=tuple(scan_in),
        chosen_index=index,
        chose_selected=bool(selected[index]),
        vectors=vectors,
        u_so=u_so,
        f0=set(f0),
        f_si=set(f_si),
        f_so=f_so,
    )

"""Built-in circuits: the exact ISCAS-89 s27 plus hand-written designs.

The hand-written circuits (counters, an LFSR, FSM controllers, a serial
pattern detector) give the test suite and the examples realistic,
fully-understood sequential structure.  Larger paper-suite circuits are
produced by :mod:`repro.circuits.synth`.

Every factory returns a *compiled* :class:`~repro.circuits.netlist.Netlist`.
"""

from __future__ import annotations

from . import bench
from .netlist import Netlist

#: The ISCAS-89 s27 benchmark, verbatim.
S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27() -> Netlist:
    """The ISCAS-89 s27 benchmark: 4 PI, 1 PO, 3 DFF, 10 gates."""
    return bench.loads(S27_BENCH, name="s27")


def counter(n_bits: int = 4) -> Netlist:
    """An ``n_bits`` synchronous up-counter with enable.

    Inputs: ``en``.  Outputs: all count bits, plus ``carry`` (high when
    the counter is at its maximum and enabled) and ``parity`` (XOR of
    all bits).  Bit ``i`` toggles when ``en`` and all lower bits are 1.
    """
    if n_bits < 1:
        raise ValueError("counter needs at least one bit")
    net = Netlist(f"counter{n_bits}")
    net.add_input("en")
    for i in range(n_bits):
        net.add_dff(f"q{i}", f"d{i}")
        net.add_output(f"q{i}")
    # tc{i} = en AND q0 AND ... AND q{i-1}  (toggle condition of bit i)
    net.add_gate("tc0", "BUF", ["en"])
    for i in range(1, n_bits):
        net.add_gate(f"tc{i}", "AND", [f"tc{i-1}", f"q{i-1}"])
    for i in range(n_bits):
        net.add_gate(f"d{i}", "XOR", [f"q{i}", f"tc{i}"])
    net.add_gate("carry", "AND", [f"tc{n_bits-1}", f"q{n_bits-1}"])
    net.add_output("carry")
    parity_in = [f"q{i}" for i in range(n_bits)]
    if n_bits == 1:
        net.add_gate("parity", "BUF", parity_in)
    else:
        net.add_gate("parity", "XOR", parity_in)
    net.add_output("parity")
    return net.compile()


def lfsr(n_bits: int = 5, taps=(0, 2)) -> Netlist:
    """A Fibonacci LFSR with a load input.

    Inputs: ``load`` and ``sin`` (serial data).  When ``load`` is high
    the feedback is replaced by ``sin``; otherwise the XOR of the tap
    bits feeds the shift chain.  Outputs: the last stage and the
    feedback net.
    """
    if n_bits < 2:
        raise ValueError("lfsr needs at least two bits")
    if any(t >= n_bits for t in taps) or len(taps) < 2:
        raise ValueError("taps must name at least two stages within range")
    net = Netlist(f"lfsr{n_bits}")
    net.add_input("load")
    net.add_input("sin")
    for i in range(n_bits):
        net.add_dff(f"r{i}", f"rd{i}")
    tap_nets = [f"r{t}" for t in taps]
    net.add_gate("fb", "XOR", tap_nets)
    # rd0 = load ? sin : fb
    net.add_gate("nload", "NOT", ["load"])
    net.add_gate("sel_sin", "AND", ["load", "sin"])
    net.add_gate("sel_fb", "AND", ["nload", "fb"])
    net.add_gate("rd0", "OR", ["sel_sin", "sel_fb"])
    for i in range(1, n_bits):
        net.add_gate(f"rd{i}", "BUF", [f"r{i-1}"])
    net.add_output(f"r{n_bits-1}")
    net.add_output("fb")
    return net.compile()


def traffic_light() -> Netlist:
    """A 2-bit Moore FSM: a traffic-light controller.

    States (s1 s0): 00 = GREEN, 01 = YELLOW, 10 = RED, 11 = RED+YELLOW.
    Inputs: ``timer`` (advance) and ``hold`` (freeze).  The state
    advances through the cycle whenever ``timer & ~hold``.  Outputs are
    the one-hot lamp signals.
    """
    net = Netlist("traffic")
    net.add_input("timer")
    net.add_input("hold")
    net.add_dff("s0", "ns0")
    net.add_dff("s1", "ns1")
    net.add_gate("nhold", "NOT", ["hold"])
    net.add_gate("adv", "AND", ["timer", "nhold"])
    net.add_gate("nadv", "NOT", ["adv"])
    # next state = state + adv (mod 4): a 2-bit increment.
    net.add_gate("ns0", "XOR", ["s0", "adv"])
    net.add_gate("c0", "AND", ["s0", "adv"])
    net.add_gate("ns1", "XOR", ["s1", "c0"])
    net.add_gate("n_s0", "NOT", ["s0"])
    net.add_gate("n_s1", "NOT", ["s1"])
    net.add_gate("green", "AND", ["n_s1", "n_s0"])
    net.add_gate("yellow", "AND", ["n_s1", "s0"])
    net.add_gate("red", "AND", ["s1", "n_s0"])
    net.add_gate("redyellow", "AND", ["s1", "s0"])
    for lamp in ("green", "yellow", "red", "redyellow"):
        net.add_output(lamp)
    return net.compile()


def pattern_detector(pattern: str = "1011") -> Netlist:
    """A serial detector for ``pattern`` (overlapping matches).

    A shift register captures the serial input ``din``; the output
    ``match`` is high in the cycle after the last pattern bit arrived.
    """
    if not pattern or any(c not in "01" for c in pattern):
        raise ValueError("pattern must be a non-empty binary string")
    n = len(pattern)
    net = Netlist(f"detect_{pattern}")
    net.add_input("din")
    net.add_dff("h0", "din")
    for i in range(1, n):
        net.add_dff(f"h{i}", f"h{i-1}")
    # h0 holds the newest bit; pattern[-1] must match h0.
    terms = []
    for i, ch in enumerate(reversed(pattern)):
        if ch == "1":
            terms.append(f"h{i}")
        else:
            net.add_gate(f"nh{i}", "NOT", [f"h{i}"])
            terms.append(f"nh{i}")
    if len(terms) == 1:
        net.add_gate("match", "BUF", terms)
    else:
        net.add_gate("match", "AND", terms)
    net.add_output("match")
    return net.compile()


def gray_counter(n_bits: int = 3) -> Netlist:
    """A Gray-code counter built as binary counter + binary-to-Gray XORs.

    Inputs: ``en``.  Outputs: the Gray-coded count bits ``g0..g{n-1}``.
    """
    if n_bits < 2:
        raise ValueError("gray counter needs at least two bits")
    net = Netlist(f"gray{n_bits}")
    net.add_input("en")
    for i in range(n_bits):
        net.add_dff(f"b{i}", f"bd{i}")
    net.add_gate("gtc0", "BUF", ["en"])
    for i in range(1, n_bits):
        net.add_gate(f"gtc{i}", "AND", [f"gtc{i-1}", f"b{i-1}"])
    for i in range(n_bits):
        net.add_gate(f"bd{i}", "XOR", [f"b{i}", f"gtc{i}"])
    for i in range(n_bits - 1):
        net.add_gate(f"g{i}", "XOR", [f"b{i}", f"b{i+1}"])
        net.add_output(f"g{i}")
    net.add_gate(f"g{n_bits-1}", "BUF", [f"b{n_bits-1}"])
    net.add_output(f"g{n_bits-1}")
    return net.compile()


def accumulator(n_bits: int = 4) -> Netlist:
    """A small accumulator datapath with opcode decode.

    Inputs: ``op1 op0`` (opcode) and ``d0..d{n-1}`` (data bus).
    The accumulator register ``a0..a{n-1}`` executes:

    ==  =========  =======================================
    op  mnemonic   next accumulator value
    ==  =========  =======================================
    00  HOLD       a
    01  LOAD       d
    10  ADD        a + d  (ripple carry, carry-out flag)
    11  AND        a & d
    ==  =========  =======================================

    Outputs: the accumulator bits, the ADD carry-out ``cout`` and a
    ``zero`` flag.  A realistic mix of control decode, a ripple adder
    and muxes -- the kind of structure the ITC-99 circuits have.
    """
    if n_bits < 2:
        raise ValueError("accumulator needs at least two bits")
    net = Netlist(f"accu{n_bits}")
    net.add_input("op1")
    net.add_input("op0")
    for i in range(n_bits):
        net.add_input(f"d{i}")
    for i in range(n_bits):
        net.add_dff(f"a{i}", f"an{i}")
        net.add_output(f"a{i}")
    # Opcode decode.
    net.add_gate("nop1", "NOT", ["op1"])
    net.add_gate("nop0", "NOT", ["op0"])
    net.add_gate("is_hold", "AND", ["nop1", "nop0"])
    net.add_gate("is_load", "AND", ["nop1", "op0"])
    net.add_gate("is_add", "AND", ["op1", "nop0"])
    net.add_gate("is_and", "AND", ["op1", "op0"])
    # Ripple-carry adder a + d.
    net.add_gate("c0", "AND", ["a0", "d0"])
    net.add_gate("s0", "XOR", ["a0", "d0"])
    for i in range(1, n_bits):
        net.add_gate(f"p{i}", "XOR", [f"a{i}", f"d{i}"])
        net.add_gate(f"g{i}", "AND", [f"a{i}", f"d{i}"])
        net.add_gate(f"pc{i}", "AND", [f"p{i}", f"c{i-1}"])
        net.add_gate(f"c{i}", "OR", [f"g{i}", f"pc{i}"])
        net.add_gate(f"s{i}", "XOR", [f"p{i}", f"c{i-1}"])
    net.add_gate("cout", "BUF", [f"c{n_bits-1}"])
    net.add_output("cout")
    # Per-bit 4-way mux into the register.
    for i in range(n_bits):
        net.add_gate(f"andv{i}", "AND", [f"a{i}", f"d{i}"])
        net.add_gate(f"m_h{i}", "AND", ["is_hold", f"a{i}"])
        net.add_gate(f"m_l{i}", "AND", ["is_load", f"d{i}"])
        net.add_gate(f"m_a{i}", "AND", ["is_add", f"s{i}"])
        net.add_gate(f"m_n{i}", "AND", ["is_and", f"andv{i}"])
        net.add_gate(f"an{i}", "OR",
                     [f"m_h{i}", f"m_l{i}", f"m_a{i}", f"m_n{i}"])
    # Zero flag over the accumulator.
    net.add_gate("zor", "OR", [f"a{i}" for i in range(n_bits)])
    net.add_gate("zero", "NOT", ["zor"])
    net.add_output("zero")
    return net.compile()


#: Name -> zero-argument factory for every built-in circuit.
BUILTINS = {
    "s27": s27,
    "counter4": counter,
    "lfsr5": lfsr,
    "traffic": traffic_light,
    "detect1011": pattern_detector,
    "gray3": gray_counter,
    "accu4": accumulator,
}


def by_name(name: str) -> Netlist:
    """Instantiate a built-in circuit by name.

    Raises
    ------
    KeyError
        If ``name`` is not in :data:`BUILTINS`.
    """
    try:
        factory = BUILTINS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin {name!r}; have {sorted(BUILTINS)}") from None
    return factory()

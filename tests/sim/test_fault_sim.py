"""Tests for the bit-parallel sequential fault simulator.

The centrepiece is an *independent oracle*: a fault is injected
structurally (the faulty line is rewired to a constant in a mutated
netlist) and the mutated circuit is simulated with the plain
good-machine simulator.  The parallel-fault simulator must agree with
this oracle on every fault, every circuit, every sequence.
"""

import random

import pytest

from repro.circuits import library, synth
from repro.circuits.netlist import Netlist
from repro.sim import values as V
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import Fault, FaultSet
from repro.sim.logicsim import CompiledCircuit, simulate_sequence

FAULT_NET = "__fault__"


def mutate(netlist: Netlist, fault: Fault) -> Netlist:
    """A copy of ``netlist`` with ``fault`` hard-wired."""
    mut = netlist.copy(netlist.name + "_mut")
    mut.add_const(FAULT_NET, fault.stuck)
    if fault.pin is None:
        for gate in mut.gates.values():
            if gate.name == FAULT_NET:
                continue
            gate.fanins = [FAULT_NET if f == fault.net else f
                           for f in gate.fanins]
        mut.outputs = [FAULT_NET if o == fault.net else o
                       for o in mut.outputs]
    else:
        gate_name, pin = fault.pin
        mut.gates[gate_name].fanins[pin] = FAULT_NET
    return mut.compile()


def oracle_detects(netlist, fault, vectors, init_state, scan_out=True,
                   observe_po=True):
    """Reference detection: simulate good and mutated circuits."""
    good = simulate_sequence(CompiledCircuit(netlist), vectors, init_state)
    bad = simulate_sequence(CompiledCircuit(mutate(netlist, fault)),
                            vectors, init_state)
    if observe_po:
        for g_frame, b_frame in zip(good.po_frames, bad.po_frames):
            for g, b in zip(g_frame, b_frame):
                if g != b and g != V.X and b != V.X:
                    return True
    if scan_out:
        for g, b in zip(good.final_state, bad.final_state):
            if g != b and g != V.X and b != V.X:
                return True
    return False


def check_against_oracle(netlist, vectors, init_state, scan_out=True):
    faults = FaultSet.collapsed(netlist)
    sim = FaultSimulator(CompiledCircuit(netlist), faults)
    detected = sim.detect(vectors, init_state, scan_out=scan_out,
                          early_exit=False)
    for i, fault in enumerate(faults):
        expected = oracle_detects(netlist, fault, vectors, init_state,
                                  scan_out=scan_out)
        got = i in detected
        assert got == expected, (
            f"{fault}: simulator={got}, oracle={expected}")


class TestAgainstOracle:
    def test_s27_with_scan(self, s27):
        rng = random.Random(3)
        vectors = [V.random_binary_vector(4, rng) for _ in range(20)]
        check_against_oracle(s27, vectors, V.vec("010"))

    def test_s27_without_scan_from_x(self, s27):
        rng = random.Random(4)
        vectors = [V.random_binary_vector(4, rng) for _ in range(25)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        detected = sim.detect(vectors, None, scan_out=False,
                              early_exit=False)
        for i, fault in enumerate(faults):
            expected = oracle_detects(s27, fault, vectors, None,
                                      scan_out=False)
            assert (i in detected) == expected, str(fault)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_circuits(self, seed):
        net = synth.generate("o", 3, 2, 3, 22, seed=seed)
        rng = random.Random(seed + 100)
        vectors = [V.random_binary_vector(3, rng) for _ in range(15)]
        init = V.random_binary_vector(3, rng)
        check_against_oracle(net, vectors, init)

    def test_single_frame(self, s27):
        check_against_oracle(s27, [V.vec("1010")], V.vec("001"))

    def test_counter_circuit(self):
        net = library.counter(3)
        vectors = [(V.ONE,)] * 6 + [(V.ZERO,)] * 2
        check_against_oracle(net, vectors, (V.ZERO,) * 3)


class TestConsistency:
    def test_width_does_not_change_results(self, s27):
        rng = random.Random(5)
        vectors = [V.random_binary_vector(4, rng) for _ in range(12)]
        faults = FaultSet.collapsed(s27)
        cc = CompiledCircuit(s27)
        wide = FaultSimulator(cc, faults, width=128)
        narrow = FaultSimulator(cc, faults, width=4)
        init = V.vec("110")
        assert wide.detect(vectors, init, early_exit=False) == \
            narrow.detect(vectors, init, early_exit=False)

    def test_early_exit_matches_full(self, s27):
        rng = random.Random(6)
        vectors = [V.random_binary_vector(4, rng) for _ in range(30)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        init = V.vec("000")
        fast = sim.detect(vectors, init, early_exit=True)
        full = sim.detect(vectors, init, early_exit=False)
        # Early exit may stop before the final scan-out only when all
        # target faults are already found, so the sets must match.
        assert fast == full

    def test_target_subset(self, s27):
        rng = random.Random(7)
        vectors = [V.random_binary_vector(4, rng) for _ in range(10)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        init = V.vec("011")
        all_detected = sim.detect(vectors, init, early_exit=False)
        subset = sorted(all_detected)[:5]
        assert sim.detect(vectors, init, target=subset,
                          early_exit=False) == set(subset)

    def test_detect_faults_wrapper(self, s27):
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        got = sim.detect_faults([V.vec("1111")], V.vec("000"))
        assert all(isinstance(f, Fault) for f in got)

    def test_invalid_width(self, s27):
        faults = FaultSet.collapsed(s27)
        with pytest.raises(ValueError):
            FaultSimulator(CompiledCircuit(s27), faults, width=1)


class TestRecords:
    def test_matches_truncated_sims(self, s27):
        rng = random.Random(8)
        vectors = [V.random_binary_vector(4, rng) for _ in range(18)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        init = V.vec("101")
        records = sim.run_with_records(vectors, init)
        for i in range(len(vectors)):
            direct = sim.detect(vectors[:i + 1], init, early_exit=False)
            assert records.detected_with_scanout_at(i) == direct, i

    def test_earliest_safe_scanout_is_minimal(self, s27):
        rng = random.Random(9)
        vectors = [V.random_binary_vector(4, rng) for _ in range(24)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        init = V.vec("000")
        records = sim.run_with_records(vectors, init)
        required = records.detected_with_scanout_at(len(vectors) - 1)
        u, detected = records.earliest_safe_scanout(required)
        assert required <= detected
        # Minimality: every earlier scan-out loses something.
        for i in range(u):
            assert not required <= records.detected_with_scanout_at(i)

    def test_unreachable_requirement_raises(self, s27):
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        records = sim.run_with_records([V.vec("0000")], V.vec("000"))
        with pytest.raises(ValueError, match="not detected"):
            records.earliest_safe_scanout(set(range(len(faults))))


class TestIncremental:
    def test_apply_matches_batch(self, s27):
        rng = random.Random(10)
        vectors = [V.random_binary_vector(4, rng) for _ in range(15)]
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        inc = sim.incremental(init_state=None)
        for v in vectors:
            inc.apply(v)
        batch = sim.detect(vectors, None, scan_out=False,
                           early_exit=False)
        assert inc.detected == batch

    def test_preview_does_not_mutate(self, s27):
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        inc = sim.incremental()
        before = [([list(z) for z in (w[0],)], None) for w in inc._words]
        snapshot = [(list(w[0]), list(w[1])) for w in inc._words]
        inc.preview(V.vec("1010"))
        after = [(list(w[0]), list(w[1])) for w in inc._words]
        assert snapshot == after
        assert inc.n_frames == 0

    def test_preview_counts_match_apply(self, s27):
        rng = random.Random(11)
        faults = FaultSet.collapsed(s27)
        sim = FaultSimulator(CompiledCircuit(s27), faults)
        inc = sim.incremental()
        for _ in range(10):
            v = V.random_binary_vector(4, rng)
            preview = inc.preview(v)
            newly = inc.apply(v)
            assert preview.new_po_detections == len(newly)

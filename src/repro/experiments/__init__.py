"""Experiment harness: suite runner and paper-table regeneration."""

from .reporting import Table, dump_json, render_all
from .runner import ArmResult, CircuitRun, run_circuit, run_suite
from .tables import (all_tables, paper_comparison, table1, table2, table3,
                     table4, table5, table_atspeed_coverage)

__all__ = [
    "Table", "dump_json", "render_all",
    "ArmResult", "CircuitRun", "run_circuit", "run_suite",
    "all_tables", "paper_comparison", "table1", "table2", "table3",
    "table4", "table5", "table_atspeed_coverage",
]

"""Static fault-space analysis: collapsing, dominance, untestability.

A purely static pass over a netlist that characterizes the stuck-at
fault universe before a single vector is simulated:

* **Equivalence classes** -- the structural collapsing of
  :mod:`repro.sim.faults` partitions the universe; every member of a
  class produces *identical* observable behavior (primary outputs and
  captured flip-flop state) under every test, so simulating one
  representative per class and copying its results to the members is
  byte-identical to simulating everything (DESIGN.md section 15).
* **Dominance graph** -- classic gate-level dominance edges
  (``dominator`` is detected by every test of ``dominated``).  In a
  combinational/full-scan setting dominators could be dropped; scan
  *sequences* observe intermediate frames, so the reproduction uses
  dominance strictly as an ordering signal, never to shrink the
  simulated set.
* **SCOAP measures** -- :mod:`repro.analysis.scoap` difficulty per
  fault, the static hardness hint the phases use as a pre-ADI
  tie-break.
* **Untestability proofs** -- sound static arguments that no test can
  ever detect a fault: the line is constant at the stuck value
  (unexcitable), or no fault effect can reach a primary output or
  flip-flop data pin (unobservable, optionally through
  constant-blocked side inputs).  Proofs close over equivalence
  classes and are the only analysis allowed to *exclude* faults from
  simulation -- soundness means exclusion is provably
  result-identical.

The :class:`FaultSpaceReport` mirrors the lint report: JSON
round-trip, rendered table, and stable rule ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..circuits.netlist import Netlist
from ..sim.faults import Fault, all_faults, fault_classes
from .scoap import UNREACHABLE, ScoapMeasures, compute_scoap

#: Rule ids for untestability proofs.
RULE_CONSTANT = "untestable.constant-line"
RULE_UNOBSERVABLE = "untestable.unobservable"
RULE_BLOCKED = "untestable.const-blocked"

#: Controlling input value per gate type (fixes the output alone).
_CONTROLLING = {"AND": 0, "NAND": 0, "OR": 1, "NOR": 1}

#: Dominance rule per gate type: ``(output_stuck, input_stuck)`` such
#: that the output fault is detected by every test of the input fault.
#: (For AND, any test of input s-a-1 sets that input 0 and the others
#: 1, driving the good output 0 and the faulty output 1 -- exactly the
#: condition detecting output s-a-1; the other types are symmetric.)
_DOMINANCE = {"AND": (1, 1), "NAND": (0, 1), "OR": (0, 0), "NOR": (1, 0)}


def _fault_to_dict(fault: Fault) -> Dict[str, Any]:
    return {"net": fault.net,
            "pin": list(fault.pin) if fault.pin is not None else None,
            "stuck": fault.stuck}


def _fault_from_dict(data: Mapping[str, Any]) -> Fault:
    pin = data.get("pin")
    return Fault(net=str(data["net"]),
                 pin=(str(pin[0]), int(pin[1])) if pin is not None
                 else None,
                 stuck=int(data["stuck"]))


@dataclass(frozen=True)
class UntestableProof:
    """One sound untestability argument for one fault."""

    fault: Fault
    rule: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"fault": _fault_to_dict(self.fault), "rule": self.rule,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UntestableProof":
        return cls(fault=_fault_from_dict(data["fault"]),
                   rule=str(data["rule"]), detail=str(data["detail"]))


@dataclass
class FaultSpaceReport:
    """Everything the static fault-space pass proved about a circuit.

    ``classes`` lists every equivalence class, representative first
    (the representative is the class minimum under the fault sort
    order, matching :func:`repro.sim.faults.collapse`).  ``dominance``
    holds ``(dominator, dominated)`` pairs -- ordering signal only.
    ``proofs`` are the directly proven untestable faults;
    ``untestable`` is their closure over the equivalence classes.
    """

    circuit: str
    n_universe: int
    classes: List[List[Fault]]
    dominance: List[Tuple[Fault, Fault]]
    scoap: ScoapMeasures
    proofs: List[UntestableProof] = field(default_factory=list)
    untestable: Set[Fault] = field(default_factory=set)

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def n_untestable(self) -> int:
        return len(self.untestable)

    @property
    def collapse_ratio(self) -> float:
        """Collapsed size over universe size (1.0 = nothing merged)."""
        if not self.n_universe:
            return 1.0
        return self.n_classes / self.n_universe

    def representatives(self) -> List[Fault]:
        return [members[0] for members in self.classes]

    # ------------------------------------------------------------------
    def untestable_indices(self, faults: Iterable[Fault]) -> Set[int]:
        """Indices (into ``faults``) of proven-untestable faults."""
        return {i for i, f in enumerate(faults) if f in self.untestable}

    def difficulty_map(self, faults: Iterable[Fault]) -> Dict[int, int]:
        """Fault index -> SCOAP difficulty, for an indexed fault list."""
        return {i: self.scoap.difficulty(f)
                for i, f in enumerate(faults)}

    def dominance_counts(self) -> Dict[Fault, int]:
        """Fault -> number of faults it dominates (ordering signal: a
        heavy dominator is caught by many tests, hence easy)."""
        counts: Dict[Fault, int] = {}
        for dominator, _ in self.dominance:
            counts[dominator] = counts.get(dominator, 0) + 1
        return counts

    def verify(self) -> List[str]:
        """Internal-consistency check; returns human-readable problems.

        Used by ``repro-compact analyze --strict``: the classes must
        partition the universe with sorted members and minimal
        representatives, every universe fault must have a finite or
        saturated difficulty, and the untestable set must be closed
        under equivalence.
        """
        problems: List[str] = []
        seen: Set[Fault] = set()
        for members in self.classes:
            if not members:
                problems.append("empty equivalence class")
                continue
            if members != sorted(members):
                problems.append(
                    f"class of {members[0]} is not sorted")
            if seen & set(members):
                problems.append(
                    f"class of {members[0]} overlaps another class")
            seen |= set(members)
        if len(seen) != self.n_universe:
            problems.append(
                f"classes cover {len(seen)} faults, universe has "
                f"{self.n_universe}")
        for members in self.classes:
            in_class = self.untestable & set(members)
            if in_class and len(in_class) != len(members):
                problems.append(
                    f"untestable set not closed over the class of "
                    f"{members[0]}")
        for proof in self.proofs:
            if proof.fault not in self.untestable:
                problems.append(
                    f"proof for {proof.fault} missing from closure")
        for members in self.classes:
            for fault in members:
                try:
                    self.scoap.difficulty(fault)
                except KeyError:
                    problems.append(f"no SCOAP measures for {fault}")
        return problems

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "n_universe": self.n_universe,
            "classes": [[_fault_to_dict(f) for f in members]
                        for members in self.classes],
            "dominance": [[_fault_to_dict(a), _fault_to_dict(b)]
                          for a, b in self.dominance],
            "scoap": self.scoap.to_dict(),
            "proofs": [p.to_dict() for p in self.proofs],
            "untestable": [_fault_to_dict(f)
                           for f in sorted(self.untestable)],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpaceReport":
        return cls(
            circuit=str(data["circuit"]),
            n_universe=int(data["n_universe"]),
            classes=[[_fault_from_dict(f) for f in members]
                     for members in data["classes"]],
            dominance=[(_fault_from_dict(a), _fault_from_dict(b))
                       for a, b in data["dominance"]],
            scoap=ScoapMeasures.from_dict(data["scoap"]),
            proofs=[UntestableProof.from_dict(p)
                    for p in data.get("proofs", [])],
            untestable={_fault_from_dict(f)
                        for f in data.get("untestable", [])},
        )

    # ------------------------------------------------------------------
    def table(self) -> Any:
        """Render as a :class:`repro.experiments.reporting.Table`."""
        from ..experiments.reporting import Table
        reps = self.representatives()
        profile = self.scoap.profile(reps)
        by_rule: Dict[str, int] = {}
        for proof in self.proofs:
            by_rule[proof.rule] = by_rule.get(proof.rule, 0) + 1
        table = Table(f"Fault space: {self.circuit}",
                      ["measure", "value"])
        table.add_row("fault universe", str(self.n_universe))
        table.add_row("equivalence classes", str(self.n_classes))
        table.add_row("collapse ratio", f"{self.collapse_ratio:.3f}")
        table.add_row("dominance edges", str(len(self.dominance)))
        table.add_row("untestable (closure)", str(self.n_untestable))
        for rule in sorted(by_rule):
            table.add_row(f"  proven {rule}", str(by_rule[rule]))
        table.add_row("difficulty min/median/max",
                      f"{profile['min']}/{profile['median']}/"
                      f"{profile['max']}")
        table.add_row("difficulty saturated", str(profile["n_saturated"]))
        return table

    def render(self) -> str:
        return str(self.table().render())


# ----------------------------------------------------------------------
# analysis passes
# ----------------------------------------------------------------------

def _const_values(netlist: Netlist) -> Dict[str, int]:
    """Nets provably constant when every PI and FF output is unknown.

    Ternary constant propagation from the ``CONST0``/``CONST1``
    generators: a net is in the result only when its value is fixed
    for *every* input pattern and scan state.
    """
    const: Dict[str, int] = {}
    for name in netlist.order:
        gate = netlist.gates[name]
        if gate.gtype == "CONST0":
            const[name] = 0
            continue
        if gate.gtype == "CONST1":
            const[name] = 1
            continue
        vals = [const.get(f) for f in gate.fanins]
        if gate.gtype == "BUF":
            if vals[0] is not None:
                const[name] = vals[0]
        elif gate.gtype == "NOT":
            if vals[0] is not None:
                const[name] = 1 - vals[0]
        elif gate.gtype in ("AND", "NAND"):
            inv = 1 if gate.gtype == "NAND" else 0
            if any(v == 0 for v in vals):
                const[name] = inv
            elif all(v == 1 for v in vals):
                const[name] = 1 - inv
        elif gate.gtype in ("OR", "NOR"):
            inv = 1 if gate.gtype == "NOR" else 0
            if any(v == 1 for v in vals):
                const[name] = 1 - inv
            elif all(v == 0 for v in vals):
                const[name] = inv
        elif gate.gtype in ("XOR", "XNOR"):
            if all(v is not None for v in vals):
                parity = sum(v for v in vals if v) & 1
                const[name] = parity if gate.gtype == "XOR" \
                    else 1 - parity
    return const


class _ObservabilityProver:
    """Per-line static observability with constant-blocked side inputs.

    A fault effect on a line propagates through a reader gate unless a
    *side* input of that gate is provably constant at the controlling
    value -- in which case the gate output is fixed regardless of the
    line.  The block is sound only when the fault site cannot disturb
    the blocking constant, so an edge is treated as blocked only when
    the site net lies outside the blocking net's fanin cone
    (conservative: when in doubt, the edge stays passable and the
    fault stays simulated).
    """

    def __init__(self, netlist: Netlist, const: Dict[str, int]) -> None:
        self.netlist = netlist
        self.const = const
        self.po_set = set(netlist.outputs)
        self._cones: Dict[str, Set[str]] = {}

    def _cone(self, net: str) -> Set[str]:
        cone = self._cones.get(net)
        if cone is None:
            cone = set(self.netlist.transitive_fanin([net],
                                                     stop_at_ffs=True))
            self._cones[net] = cone
        return cone

    def _pin_passable(self, gate_name: str, pin: int,
                      site_net: str) -> Tuple[bool, bool]:
        """``(passable, blocked_considered)`` for one gate input pin."""
        gate = self.netlist.gates[gate_name]
        ctrl = _CONTROLLING.get(gate.gtype)
        if ctrl is None:
            return True, False
        blocked_seen = False
        for j, other in enumerate(gate.fanins):
            if j == pin or self.const.get(other) != ctrl:
                continue
            blocked_seen = True
            if site_net not in self._cone(other):
                return False, True
        return True, blocked_seen

    def observable(self, net: str,
                   pin: Optional[Tuple[str, int]]) -> Tuple[bool, bool]:
        """Can a fault effect on this line ever reach an observation
        point?  Returns ``(observable, any_edge_blocked)``."""
        gates = self.netlist.gates
        used_block = False
        reached: Set[str] = set()
        stack: List[str] = []

        def enter(effect_net: str) -> bool:
            """Push a net carrying the effect; True when observed."""
            nonlocal used_block
            if effect_net in reached:
                return False
            reached.add(effect_net)
            if effect_net in self.po_set:
                return True
            stack.append(effect_net)
            return False

        if pin is None:
            if enter(net):
                return True, used_block
        else:
            gate_name, pin_idx = pin
            if gates[gate_name].gtype == "DFF":
                return True, used_block  # scan-captured data pin
            passable, blocked = self._pin_passable(gate_name, pin_idx,
                                                   net)
            used_block = used_block or blocked
            if not passable:
                return False, used_block
            if enter(gate_name):
                return True, used_block
        while stack:
            current = stack.pop()
            for reader in self.netlist.fanout[current]:
                rgate = gates[reader]
                if rgate.gtype == "DFF":
                    return True, used_block
                for idx, fin in enumerate(rgate.fanins):
                    if fin != current:
                        continue
                    passable, blocked = self._pin_passable(reader, idx,
                                                           net)
                    used_block = used_block or blocked
                    if passable and enter(reader):
                        return True, used_block
        return False, used_block


def _untestable_proofs(netlist: Netlist,
                       universe: List[Fault]) -> List[UntestableProof]:
    """Directly provable untestable faults (before class closure)."""
    const = _const_values(netlist)
    seeds = list(netlist.outputs)
    seeds.extend(netlist.gates[q].fanins[0] for q in netlist.flip_flops)
    live = set(netlist.transitive_fanin(seeds, stop_at_ffs=True)) \
        if seeds else set()
    prover = _ObservabilityProver(netlist, const) if const else None
    proofs: List[UntestableProof] = []
    obs_cache: Dict[Tuple[str, Optional[Tuple[str, int]]],
                    Tuple[bool, bool]] = {}
    for fault in universe:
        value = const.get(fault.net)
        if value is not None and value == fault.stuck:
            proofs.append(UntestableProof(
                fault, RULE_CONSTANT,
                f"line is constant {value}; stuck-at-{fault.stuck} "
                f"is unexcitable"))
            continue
        line = (fault.net, fault.pin)
        cached = obs_cache.get(line)
        if cached is None:
            if prover is not None:
                cached = prover.observable(fault.net, fault.pin)
            elif fault.pin is not None and \
                    netlist.gates[fault.pin[0]].gtype == "DFF":
                cached = (True, False)
            elif fault.pin is not None:
                cached = (fault.pin[0] in live, False)
            else:
                cached = (fault.net in live, False)
            obs_cache[line] = cached
        observable, used_block = cached
        if not observable:
            if used_block:
                proofs.append(UntestableProof(
                    fault, RULE_BLOCKED,
                    "every propagation path is blocked by a "
                    "constant-valued side input"))
            else:
                proofs.append(UntestableProof(
                    fault, RULE_UNOBSERVABLE,
                    "no structural path to a primary output or "
                    "flip-flop data pin"))
    return proofs


def _dominance_edges(netlist: Netlist) -> List[Tuple[Fault, Fault]]:
    """Gate-level dominance pairs ``(dominator, dominated)``.

    Only the classic AND/NAND/OR/NOR rules apply; XOR-family gates
    propagate every input difference, so the detecting condition on
    the output depends on the good value and no static edge exists.
    Single-input gates keep their (degenerate but sound) edge.
    """
    from ..sim.faults import _input_line
    edges: List[Tuple[Fault, Fault]] = []
    for gate in netlist.gates.values():
        rule = _DOMINANCE.get(gate.gtype)
        if rule is None:
            continue
        out_stuck, in_stuck = rule
        dominator = Fault(gate.name, None, out_stuck)
        for i, fin in enumerate(gate.fanins):
            net, pin = _input_line(netlist, gate.name, i, fin)
            edges.append((dominator, Fault(net, pin, in_stuck)))
    return edges


def analyze_faultspace(netlist: Netlist,
                       name: Optional[str] = None) -> FaultSpaceReport:
    """Run the full static fault-space pass over one netlist."""
    if not netlist.is_compiled():
        netlist.compile()
    universe = all_faults(netlist)
    classes_map = fault_classes(netlist)
    classes = [sorted(members) for _, members in
               sorted(classes_map.items())]
    proofs = _untestable_proofs(netlist, universe)
    direct = {p.fault for p in proofs}
    untestable: Set[Fault] = set()
    for members in classes:
        # A class member no test detects means no test distinguishes
        # any member: the whole class is untestable.
        if direct & set(members):
            untestable |= set(members)
    return FaultSpaceReport(
        circuit=name or netlist.name,
        n_universe=len(universe),
        classes=classes,
        dominance=_dominance_edges(netlist),
        scoap=compute_scoap(netlist),
        proofs=proofs,
        untestable=untestable,
    )

"""Reader and writer for the ISCAS-89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G7  = DFF(G10)

Gate names are case-insensitive in the type position; net names are kept
verbatim.  ``DFF`` declarations create state elements; everything else is
combinational.  The writer emits a canonical form that this parser (and
the original ISCAS tools) can read back.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from .netlist import ALL_TYPES, Netlist, NetlistError

_DECL_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                      re.IGNORECASE)
_GATE_RE = re.compile(
    r"^\s*([^=\s]+)\s*=\s*([A-Za-z01]+)\s*\(\s*([^)]*)\)\s*$")

#: Aliases seen in the wild for standard gate types.
_TYPE_ALIASES = {
    "BUFF": "BUF",
    "INV": "NOT",
    "DFFSR": "DFF",
}


class BenchFormatError(NetlistError):
    """Raised when a ``.bench`` file cannot be parsed."""


def loads(text: str, name: str = "circuit",
          compile: bool = True) -> Netlist:
    """Parse ``.bench`` source text into a compiled :class:`Netlist`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name to give the resulting netlist.
    compile:
        Compile the parsed netlist (default).  ``compile=False``
        returns the raw netlist so callers that *diagnose* broken
        circuits (the lint rules) can run their pre-compile passes
        instead of getting a :class:`NetlistError`.

    Raises
    ------
    BenchFormatError
        On any unparseable non-comment line or unknown gate type.
    """
    net = Netlist(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _DECL_RE.match(line)
        if m:
            kind, signal = m.group(1).upper(), m.group(2)
            if kind == "INPUT":
                net.add_input(signal)
            else:
                net.add_output(signal)
            continue
        m = _GATE_RE.match(line)
        if m:
            out, gtype, fanin_str = m.groups()
            gtype = gtype.upper()
            gtype = _TYPE_ALIASES.get(gtype, gtype)
            fanins = [f.strip() for f in fanin_str.split(",") if f.strip()]
            if gtype not in ALL_TYPES:
                raise BenchFormatError(
                    f"line {lineno}: unknown gate type {gtype!r}")
            if gtype == "DFF":
                if len(fanins) != 1:
                    raise BenchFormatError(
                        f"line {lineno}: DFF must have one fanin")
                net.add_dff(out, fanins[0])
            elif gtype in ("CONST0", "CONST1"):
                net.add_const(out, 1 if gtype == "CONST1" else 0)
            else:
                net.add_gate(out, gtype, fanins)
            continue
        raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")
    return net.compile() if compile else net


def load(path: Union[str, Path], name: str = "") -> Netlist:
    """Parse a ``.bench`` file from disk."""
    path = Path(path)
    return loads(path.read_text(), name or path.stem)


def dumps(net: Netlist) -> str:
    """Serialize a netlist to canonical ``.bench`` text."""
    lines = [f"# {net.name}",
             f"# {net.num_inputs} inputs, {net.num_outputs} outputs, "
             f"{net.num_ffs} flip-flops, {net.num_gates} gates"]
    for pi in net.inputs:
        lines.append(f"INPUT({pi})")
    for po in net.outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for ff in net.flip_flops:
        gate = net.gates[ff]
        lines.append(f"{ff} = DFF({gate.fanins[0]})")
    for gname in net.comb_gates:
        gate = net.gates[gname]
        lines.append(f"{gname} = {gate.gtype}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def dump(net: Netlist, path: Union[str, Path]) -> None:
    """Write a netlist to ``path`` in ``.bench`` format."""
    Path(path).write_text(dumps(net))

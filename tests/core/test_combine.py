"""Tests for Phase 4 / [4]: static compaction by combining tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.combine import static_compact
from repro.core.scan_test import ScanTestSet, single_vector_test


def initial_set(wb, comb):
    return ScanTestSet(
        len(wb.circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb.tests])


def union_coverage(wb, test_set):
    covered = set()
    for test in test_set:
        covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                 early_exit=False)
    return covered


class TestStaticCompact:
    def test_coverage_never_drops(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial)
        after = union_coverage(wb, result.test_set)
        assert before <= after
        assert before <= result.detected

    def test_cycles_never_increase(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.test_set.clock_cycles() <= initial.clock_cycles()
        assert result.stats.initial_cycles == initial.clock_cycles()
        assert result.stats.final_cycles == \
            result.test_set.clock_cycles()

    def test_total_vectors_preserved(self, s27_bench, s27_comb):
        """Combining never adds or removes primary input vectors."""
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.test_set.total_vectors() == \
            initial.total_vectors()

    def test_accepted_count_matches_test_reduction(self, s27_bench,
                                                   s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.stats.initial_tests - result.stats.final_tests == \
            result.stats.combinations_accepted

    def test_input_not_mutated(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        n_before = len(initial)
        static_compact(wb.sim, initial)
        assert len(initial) == n_before

    def test_max_sequence_length_respected(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial, max_sequence_length=2)
        assert all(t.length <= 2 for t in result.test_set)

    def test_idempotent_on_compacted(self, s27_bench, s27_comb):
        """Compacting a compacted set achieves nothing further with
        the same pair ordering."""
        wb = s27_bench
        first = static_compact(wb.sim, initial_set(wb, s27_comb))
        second = static_compact(wb.sim, first.test_set)
        assert len(second.test_set) == len(first.test_set)

    def test_target_restriction(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        target = set(range(0, len(wb.faults), 2))
        result = static_compact(wb.sim, initial, target=target)
        after = union_coverage(wb, result.test_set) & target
        before = union_coverage(wb, initial) & target
        assert before <= after

    def test_synthetic_circuit(self, mid_bench, mid_comb):
        wb = mid_bench
        initial = ScanTestSet(
            len(wb.circuit.ff_ids),
            [single_vector_test(t.state, t.pi) for t in mid_comb.tests])
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial)
        assert before <= union_coverage(wb, result.test_set)
        assert result.test_set.clock_cycles() <= initial.clock_cycles()


class TestMergeFilter:
    def test_none_filter_is_byte_identical(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        plain = static_compact(wb.sim, initial)
        filtered = static_compact(wb.sim, initial, merge_filter=None)
        assert filtered.test_set.tests == plain.test_set.tests
        assert filtered.detected == plain.detected
        assert filtered.stats == plain.stats

    def test_permissive_filter_is_byte_identical(self, s27_bench,
                                                 s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        plain = static_compact(wb.sim, initial)
        filtered = static_compact(wb.sim, initial,
                                  merge_filter=lambda test: True)
        assert filtered.test_set.tests == plain.test_set.tests
        assert filtered.stats.combinations_rejected == 0

    def test_always_false_filter_blocks_all_merges(self, s27_bench,
                                                   s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial,
                                merge_filter=lambda test: False)
        assert list(result.test_set.tests) == list(initial.tests)
        assert result.stats.combinations_accepted == 0
        # Every merge the unfiltered run accepted was vetoed here.
        plain = static_compact(wb.sim, initial)
        assert result.stats.combinations_rejected >= \
            plain.stats.combinations_accepted > 0

    def test_budget_filter_caps_every_emitted_test(self, s27_bench,
                                                   s27_comb):
        from repro.power.activity import ActivityEngine
        from repro.power.constrain import wtm_budget_filter
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        engine = ActivityEngine(wb.circuit)
        # Budget = the largest initial per-test peak: every input test
        # fits, so every emitted test must fit too.
        budget = max(engine.test_power(t).peak_shift_wtm
                     for t in initial)
        result = static_compact(
            wb.sim, initial,
            merge_filter=wtm_budget_filter(engine, budget))
        for test in result.test_set:
            assert engine.test_power(test).peak_shift_wtm <= budget
        # Coverage still never drops.
        assert union_coverage(wb, initial) <= result.detected

    def test_infinite_budget_is_byte_identical(self, s27_bench,
                                               s27_comb):
        from repro.power.activity import ActivityEngine
        from repro.power.constrain import wtm_budget_filter
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        engine = ActivityEngine(wb.circuit)
        plain = static_compact(wb.sim, initial)
        capped = static_compact(
            wb.sim, initial,
            merge_filter=wtm_budget_filter(engine, float("inf")))
        assert capped.test_set.tests == plain.test_set.tests
        assert capped.detected == plain.detected

    def test_rejected_pairs_not_retried(self, s27_bench, s27_comb):
        """The filter is called at most once per candidate merge: a
        vetoed pair lands in the failed set and never comes back."""
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        seen = []

        def veto_all(test):
            seen.append(test)
            return False

        static_compact(wb.sim, initial, merge_filter=veto_all)
        assert len(seen) == len(set(id(t) for t in seen))


class TestMergeFilterProperties:
    """Budget-filter properties over random synthetic circuits."""

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 200))
    def test_infinite_budget_byte_identical_and_cap_holds(self, seed):
        from repro import api
        from repro.atpg import comb_set
        from repro.circuits import synth
        from repro.power.activity import ActivityEngine
        from repro.power.constrain import wtm_budget_filter
        netlist = synth.generate(f"cmb{seed}", 4, 3, 4, 35, seed=seed)
        wb = api.Workbench.for_netlist(netlist)
        comb = comb_set.generate(wb.circuit, wb.faults, seed=1)
        initial = initial_set(wb, comb)
        engine = ActivityEngine(wb.circuit)
        plain = static_compact(wb.sim, initial)
        infinite = static_compact(
            wb.sim, initial,
            merge_filter=wtm_budget_filter(engine, float("inf")))
        assert infinite.test_set.tests == plain.test_set.tests
        assert infinite.detected == plain.detected
        assert infinite.stats == plain.stats
        budget = max(engine.test_power(t).peak_shift_wtm
                     for t in initial)
        capped = static_compact(
            wb.sim, initial,
            merge_filter=wtm_budget_filter(engine, budget))
        assert all(engine.test_power(t).peak_shift_wtm <= budget
                   for t in capped.test_set)
        assert union_coverage(wb, initial) <= capped.detected

"""Partial-scan extension of the compaction procedure.

The paper notes (Section 1) that "the proposed procedure can be
extended to the case of partial-scan circuits".  This module provides
that extension:

* :class:`PartialScanPlan` -- which flip-flops are in the scan chain.
  :meth:`PartialScanPlan.by_cycle_cutting` implements the classical
  selection heuristic: scan enough flip-flops to break every
  flip-flop-to-flip-flop dependency cycle (self-loops first, then a
  greedy feedback-vertex-set approximation), which bounds the
  sequential depth of the unscanned remainder.
* :func:`workbench_for` -- simulators configured for the plan: scan-in
  vectors cover only the scanned flip-flops, scan-outs observe only
  them, PODEM treats unscanned flip-flops as uncontrollable and
  unobservable.
* :func:`compact_partial` -- the paper's four phases under the plan.

Cost model: a scan operation now shifts only ``|scanned|`` bits, so
``N_cyc = (k+1) * |scanned| + sum L(T_j)`` -- shorter scans buy cheaper
tests at the price of a harder (less controllable) test generation
problem; the example/bench expose that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..atpg import comb_set as comb_set_mod
from ..atpg import random_gen
from ..circuits.netlist import Netlist
from ..sim.comb_sim import CombPatternSim
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import FaultSet
from ..sim.logicsim import CompiledCircuit
from .proposed import ProposedResult, run as run_proposed


@dataclass
class PartialScanPlan:
    """A scan-chain plan: the subset of flip-flops that are scanned.

    ``positions`` indexes into the netlist's flip-flop order (which is
    also the scan-chain order for the scanned subset).
    """

    netlist: Netlist
    positions: List[int]

    def __post_init__(self) -> None:
        n_ff = self.netlist.num_ffs
        self.positions = sorted(set(self.positions))
        if self.positions and not (
                0 <= self.positions[0] and self.positions[-1] < n_ff):
            raise ValueError("scan position out of range")

    @property
    def scanned_ffs(self) -> List[str]:
        ffs = self.netlist.flip_flops
        return [ffs[p] for p in self.positions]

    @property
    def n_scanned(self) -> int:
        return len(self.positions)

    @property
    def is_full_scan(self) -> bool:
        return self.n_scanned == self.netlist.num_ffs

    # ------------------------------------------------------------------
    @classmethod
    def full(cls, netlist: Netlist) -> "PartialScanPlan":
        return cls(netlist, list(range(netlist.num_ffs)))

    @classmethod
    def by_cycle_cutting(cls, netlist: Netlist,
                         extra: int = 0) -> "PartialScanPlan":
        """Select scan flip-flops that break all sequential cycles.

        Builds the flip-flop dependency graph (an edge ``a -> b`` when
        ``a``'s output is in the combinational cone of ``b``'s data
        input), removes self-loops first, then greedily removes the
        highest-degree vertex of each remaining strongly-connected
        component until the graph is acyclic.  ``extra`` adds that many
        further flip-flops (highest remaining degree) for
        controllability.
        """
        if not netlist.is_compiled():
            netlist.compile()
        ffs = netlist.flip_flops
        index = {ff: i for i, ff in enumerate(ffs)}
        edges: Dict[int, Set[int]] = {i: set() for i in range(len(ffs))}
        for ff in ffs:
            d_net = netlist.gates[ff].fanins[0]
            cone = netlist.transitive_fanin([d_net])
            for src in cone:
                if src in index:
                    edges[index[src]].add(index[ff])
        chosen: Set[int] = set()
        for i in range(len(ffs)):
            if i in edges[i]:
                chosen.add(i)  # self-loop: must be cut
        while True:
            cycle = _find_cycle(edges, chosen)
            if cycle is None:
                break
            # Cut the cycle at its highest-degree vertex.
            best = max(cycle, key=lambda v: len(edges[v]) +
                       sum(1 for u in edges if v in edges[u]))
            chosen.add(best)
        remaining = [i for i in range(len(ffs)) if i not in chosen]
        remaining.sort(key=lambda v: -(len(edges[v]) +
                                       sum(1 for u in edges
                                           if v in edges[u])))
        chosen.update(remaining[:max(0, extra)])
        if not chosen:
            chosen.add(0)  # degenerate: keep at least one scanned FF
        return cls(netlist, sorted(chosen))


def _find_cycle(edges: Dict[int, Set[int]],
                removed: Set[int]) -> Optional[List[int]]:
    """A directed cycle avoiding ``removed`` vertices, or ``None``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in edges if v not in removed}
    parent: Dict[int, Optional[int]] = {}

    for root in color:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(edges[root])))]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ in removed:
                    continue
                if color.get(succ) == GRAY:
                    # Found a cycle: unwind the parents.
                    cycle = [node]
                    cur = node
                    while cur != succ:
                        cur = parent[cur]
                        cycle.append(cur)
                    return cycle
                if color.get(succ) == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


@dataclass
class PartialWorkbench:
    """Simulators configured for one partial-scan plan."""

    plan: PartialScanPlan
    circuit: CompiledCircuit
    faults: FaultSet
    sim: FaultSimulator
    comb_sim: CombPatternSim


def workbench_for(plan: PartialScanPlan) -> PartialWorkbench:
    """Build plan-aware simulators (shared compile + fault collapse)."""
    circuit = CompiledCircuit(plan.netlist)
    faults = FaultSet.collapsed(plan.netlist)
    positions = None if plan.is_full_scan else plan.positions
    return PartialWorkbench(
        plan=plan,
        circuit=circuit,
        faults=faults,
        sim=FaultSimulator(circuit, faults, scan_positions=positions),
        comb_sim=CombPatternSim(circuit, faults,
                                scan_positions=positions),
    )


def compact_partial(
    plan: PartialScanPlan,
    seed: int = 0,
    t0_length: int = 300,
    workbench: Optional[PartialWorkbench] = None,
    run_phase4: bool = True,
) -> ProposedResult:
    """The paper's procedure on a partial-scan circuit.

    The combinational test set, the scan-in candidates, the scan-out
    observation and the cost model all follow the plan; the initial
    sequence ``T0`` is random (Table-5 style), since partial-scan
    circuits are exactly the case where a no-scan sequence is cheap to
    apply.
    """
    wb = workbench or workbench_for(plan)
    positions = None if plan.is_full_scan else plan.positions
    comb = comb_set_mod.generate(wb.circuit, wb.faults, seed=seed,
                                 scan_positions=positions)
    if not comb.tests:
        raise ValueError("no combinational tests found under this plan")
    t0 = random_gen.random_sequence(wb.circuit, t0_length, seed=seed)
    return run_proposed(wb.sim, wb.comb_sim, t0, comb.tests,
                        run_phase4=run_phase4)

"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each property runs over freshly generated random circuits and inputs,
attacking the assumptions the compaction procedures rely on.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import random_gen
from repro.atpg.tfx import unroll
from repro.circuits import synth
from repro.core import tester
from repro.core.omission import omit_vectors
from repro.core.scan_test import ScanTest, ScanTestSet
from repro.sim import values as V
from repro.sim.fault_sim import FaultSimulator
from repro.sim.faults import FaultSet, all_faults, fault_classes
from repro.sim.logicsim import CompiledCircuit, simulate_sequence

_CIRCUIT_CACHE = {}


def circuit_for(seed):
    """Small random circuit (cached: hypothesis re-visits seeds)."""
    if seed not in _CIRCUIT_CACHE:
        net = synth.generate("prop", 3, 2, 4, 26, seed=seed)
        cc = CompiledCircuit(net)
        fs = FaultSet.collapsed(net)
        _CIRCUIT_CACHE[seed] = (net, cc, fs, FaultSimulator(cc, fs))
    return _CIRCUIT_CACHE[seed]


circuit_seeds = st.integers(0, 19)


class TestDetectionMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_po_detection_grows_with_sequence(self, seed, data):
        """Without scan-out, extending a sequence never loses a
        detection -- the property Phase 1's Step 1 relies on."""
        net, cc, fs, sim = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n = data.draw(st.integers(2, 12))
        seq = [V.random_binary_vector(3, rng) for _ in range(n)]
        cut = data.draw(st.integers(1, n - 1))
        short = sim.detect(seq[:cut], None, scan_out=False,
                           early_exit=False)
        full = sim.detect(seq, None, scan_out=False, early_exit=False)
        assert short <= full

    @settings(max_examples=25, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_scan_in_refinement_keeps_detections(self, seed, data):
        """Detections from the all-X state survive any binary scan-in
        (the paper's 'F0 need not be simulated' claim)."""
        net, cc, fs, sim = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        seq = [V.random_binary_vector(3, rng) for _ in range(8)]
        f0 = sim.detect(seq, None, scan_out=False, early_exit=False)
        state = V.random_binary_vector(4, rng)
        with_state = sim.detect(seq, state, scan_out=False,
                                early_exit=False)
        assert f0 <= with_state


class TestStructuralProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=circuit_seeds)
    def test_fault_classes_partition(self, seed):
        net, cc, fs, sim = circuit_for(seed)
        classes = fault_classes(net)
        members = sorted(f for cls in classes.values() for f in cls)
        assert members == sorted(all_faults(net))

    @settings(max_examples=10, deadline=None)
    @given(seed=circuit_seeds, depth=st.integers(1, 4), data=st.data())
    def test_unroll_equals_sequential_simulation(self, seed, depth,
                                                 data):
        net, cc, fs, sim = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        u = unroll(net, depth)
        ucc = CompiledCircuit(u)
        state = V.random_binary_vector(4, rng)
        vectors = [V.random_binary_vector(3, rng) for _ in range(depth)]
        ref = simulate_sequence(cc, vectors, state)
        values = {}
        for t, vec in enumerate(vectors):
            for pi, val in zip(net.inputs, vec):
                values[f"{pi}@{t}"] = val
        for ff, val in zip(net.flip_flops, state):
            values[f"{ff}@0"] = val
        flat = tuple(values[name] for name in u.inputs)
        from repro.sim.logicsim import simulate_comb
        po, _ = simulate_comb(ucc, flat, ())
        for t in range(depth):
            for p, po_name in enumerate(net.outputs):
                assert po[u.outputs.index(f"{po_name}@{t}")] == \
                    ref.po_frames[t][p]


class TestOmissionContract:
    @settings(max_examples=10, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_subsequence_and_preservation(self, seed, data):
        net, cc, fs, sim = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        n = data.draw(st.integers(3, 20))
        vectors = tuple(V.random_binary_vector(3, rng)
                        for _ in range(n))
        scan_in = V.random_binary_vector(4, rng)
        test = ScanTest(scan_in, vectors)
        required = sim.detect(list(vectors), scan_in, early_exit=False)
        result = omit_vectors(sim, test, required)
        # Subsequence:
        it = iter(vectors)
        assert all(any(v == w for w in it)
                   for v in result.test.vectors)
        # Preservation, via independent re-simulation:
        check = sim.detect(list(result.test.vectors), scan_in,
                           early_exit=False)
        assert required <= check


class TestTesterContract:
    @settings(max_examples=10, deadline=None)
    @given(seed=circuit_seeds, data=st.data())
    def test_schedule_length_and_replay(self, seed, data):
        net, cc, fs, sim = circuit_for(seed)
        rng = random.Random(data.draw(st.integers(0, 999)))
        k = data.draw(st.integers(1, 4))
        tests = []
        for _ in range(k):
            length = data.draw(st.integers(1, 6))
            tests.append(ScanTest(
                V.random_binary_vector(4, rng),
                tuple(V.random_binary_vector(3, rng)
                      for _ in range(length))))
        ts = ScanTestSet(4, tests)
        program = tester.schedule(ts, cc)
        assert len(program) == ts.clock_cycles()
        assert tester.execute(program, cc).passed


class TestCostModel:
    @given(st.integers(1, 64),
           st.lists(st.integers(1, 30), min_size=2, max_size=8))
    def test_combining_saves_exactly_one_scan(self, n_sv, lengths):
        tests = [ScanTest((V.ZERO,) * n_sv,
                          tuple((V.ONE,) for _ in range(length)))
                 for length in lengths]
        ts = ScanTestSet(n_sv, tests)
        combined = tests[0].combined_with(tests[1])
        ts2 = ScanTestSet(n_sv, [combined] + tests[2:])
        assert ts.clock_cycles() - ts2.clock_cycles() == n_sv
        assert ts.total_vectors() == ts2.total_vectors()

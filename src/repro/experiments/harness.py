"""Resilient suite execution: isolation, timeouts, retries, resume.

:func:`repro.experiments.runner.run_suite` is a bare serial loop -- one
hung ATPG call or one crash on a single circuit discards every
completed :class:`CircuitRun` and produces no tables at all.  This
module gives long experiment campaigns the resilience a multi-circuit
fault-simulation sweep needs:

* every ``(circuit, seed)`` job runs in an isolated worker subprocess
  (``multiprocessing`` with the ``spawn`` start method), so a crash or
  an out-of-control computation cannot take the campaign down;
* a per-job wall-clock **timeout** kills hung workers;
* failed and timed-out jobs are **retried** with exponential backoff,
  optionally perturbing the seed on the final attempt (a different
  random ``T0`` often steers around a pathological case);
* every outcome is recorded as a structured :class:`JobRecord`
  (``ok`` / ``failed`` / ``timeout`` / ``stall`` / ``skipped-resume``
  / ``skipped-lint``, attempt count, seconds, traceback, last-seen
  progress);
* workers stream **heartbeats** over the result pipe (current arm,
  phase, faults remaining; see
  :mod:`repro.experiments.supervision`); the supervisor kills a
  worker whose heartbeat goes quiet for ``stall_timeout`` seconds --
  catching a genuinely hung worker long before the wall-clock fuse,
  while a slow-but-alive one keeps running;
* at every phase boundary the worker persists **salvage** state (see
  :mod:`repro.experiments.salvage`); a retry resumes from the last
  completed phase byte-identically instead of recomputing, and a job
  that ultimately fails with salvage on disk is reported as a
  :class:`~repro.experiments.salvage.PartialRun`;
* completed runs are **checkpointed** incrementally to a JSONL run
  store, so an interrupted or partially failed campaign resumes from
  the checkpoint instead of recomputing;
* a **pre-flight lint** (structural rules only; see
  :mod:`repro.analysis`) runs once per distinct circuit before any
  worker is spawned: a circuit with error-severity findings would
  crash (or silently mislead) every attempt, so its jobs are recorded
  as ``skipped-lint`` with the rule ids instead of burning
  ``retries + 1`` subprocesses to rediscover the problem.

Run-store layout (``run_dir``)::

    runs.jsonl      one completed CircuitRun per line (checkpoint)
    journal.jsonl   one JobRecord per finished job, every invocation
    salvage/        per-job phase-boundary state (deleted on success)
    quarantine/     corrupt records moved aside by loads and `doctor`

``runs.jsonl`` and ``journal.jsonl`` are append-only; every line is
wrapped in the versioned, CRC32-trailed envelope of
:mod:`repro.experiments.salvage`.  A corrupt line -- truncated
trailing write, bit rot, a partial overwrite -- is **quarantined** on
load: moved to ``quarantine/`` and removed from the store, so the
affected job (and only it) is recomputed on resume.  Legacy
pre-envelope lines stay readable.  ``repro-compact doctor`` runs the
same verification standalone and reports what it found.

Chaos hook
----------
``HarnessConfig.chaos`` is a callable invoked once per attempt with
``(spec, attempt)``; it may return a directive that forces a failure
mode deterministically -- the fault-injection surface the tests use:

``"crash"``
    the worker raises (clean traceback comes back),
``"exit"``
    the worker dies via ``os._exit`` (no traceback, like a segfault),
``"hang"``
    the worker freezes before doing any work (no heartbeats; killed
    by the stall timeout if set, else the wall clock),
``"corrupt-checkpoint"``
    a garbage line is appended to ``runs.jsonl`` before the attempt
    (the attempt itself then runs normally),
``"crash@phaseN"`` / ``"stall@phaseN"``
    enacted inside the pipeline when phase ``N`` begins -- after the
    previous phase's salvage flushed,
``"corrupt-salvage"``
    every salvage flush is damaged on disk and the worker dies at the
    first phase boundary; the retry must quarantine the rot and
    recompute fresh.

The same directives are reachable without code through the
``REPRO_CHAOS`` environment variable
(``[circuit:]directive[,...]``, first attempts only); see
:func:`repro.experiments.supervision.chaos_from_env`.
"""

from __future__ import annotations

import os
import random
import time
import traceback
import zlib
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..circuits.suite import CircuitProfile
from ..core.phase1 import DEFAULT_CANDIDATE_SCAN
from . import reporting
from .reporting import Table
from .runner import CircuitRun, resolve_profiles, run_circuit_by_name
from .salvage import (PartialRun, SalvageStore, SalvageWriter, encode_line,
                      load_jsonl, salvage_usable)
from .supervision import (CHAOS_KINDS, ProgressReporter, WorkerHooks,
                          chaos_from_env, freeze, parse_chaos)

#: Added to the base seed when the final retry perturbs it.  Never
#: applied when usable salvage exists -- a perturbed seed would mix
#: two random streams into one result.
SEED_PERTURBATION = 7919

_POLL_INTERVAL = 0.02

#: Directives a chaos callable may return (re-exported; the full
#: grammar, including ``@phaseN`` scopes, lives in
#: :func:`repro.experiments.supervision.parse_chaos`).
CHAOS_DIRECTIVES = CHAOS_KINDS

ChaosFn = Callable[["JobSpec", int], Optional[str]]

#: JobSpec fields a checkpointed run must have been produced under
#: for :func:`_checkpoint_usable` to accept it.  ``delay`` is absent
#: on purpose: it is measurement-only (never changes the produced
#: test sets), so a delay-bearing checkpoint also serves a plain
#: request; the reverse direction is the dedicated report-presence
#: check in :func:`_checkpoint_usable`.
CHECKPOINT_KNOBS = ("engine", "width", "candidate_scan", "x_fill",
                    "power_budget", "adi", "scoap")

#: Knob values assumed when a (modern, knob-recording) checkpoint
#: predates a knob entirely -- the knob's default, under which the
#: checkpoint was necessarily produced.  ``trial_batch`` is absent on
#: purpose: it never changes results, so checkpoints match across any
#: batching configuration.
_KNOB_DEFAULTS: Dict[str, Any] = {"adi": False, "scoap": False}


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a circuit run under one seed / arm config.

    ``engine``/``width`` select the simulation backend
    (``"codegen"``, ``"interp"``, ``"numpy"`` or ``"auto"``, see
    :meth:`repro.api.Workbench.for_netlist`) and fault-packing
    policy; legacy spec dicts without an ``engine`` key default to
    ``"codegen"`` and ``_checkpoint_usable`` rejects rows whose
    engine differs from the requested one;
    ``candidate_scan`` the Phase-1 Step-2 mode ("lanes" or "scalar");
    ``x_fill``/``power_budget`` the don't-care fill strategy and the
    optional peak shift-WTM cap (see :mod:`repro.power`).  All travel
    across the ``spawn`` boundary as plain values (``width`` is an int
    or the string ``"auto"``); workers read missing keys with
    defaults, so old callers and legacy spec dicts stay compatible
    (they default to ``random`` fill with no budget).
    """

    circuit: str
    seed: int = 1
    arms: Tuple[str, ...] = ("seqgen", "random")
    with_baselines: bool = True
    #: Also measure at-speed quality (TDF coverage + clock cost) of
    #: the final test sets (result-shaping: compared on resume; legacy
    #: spec dicts -- which carried ``with_transition`` -- default to
    #: off, and workers accept either key).
    delay: bool = False
    engine: str = "codegen"
    width: Union[int, str] = "auto"
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN
    x_fill: str = "random"
    power_budget: Optional[float] = None
    #: Lane budget for batched trial simulation (Phase-3 blocks,
    #: Phase-4 prefetch).  Never result-shaping -- excluded from
    #: checkpoint-identity comparison.
    trial_batch: int = 64
    #: Accidental-Detection-Index ordering guidance (result-shaping:
    #: compared on resume; legacy checkpoints count as ``False``).
    adi: bool = False
    #: SCOAP testability-ordering guidance (result-shaping: compared
    #: on resume; legacy checkpoints count as ``False``).
    scoap: bool = False

    @property
    def key(self) -> Tuple[str, int]:
        """Checkpoint identity (circuit, base seed)."""
        return (self.circuit, self.seed)


@dataclass
class JobRecord:
    """Structured outcome of one job across all its attempts."""

    circuit: str
    seed: int
    status: str   # ok | failed | timeout | stall | skipped-resume
    #             # | skipped-lint
    attempts: int
    seconds: float
    error: Optional[str] = None
    #: Analyzer rule ids behind a ``skipped-lint`` outcome (empty
    #: otherwise).  Stored in the journal; JSON round-trips lists, so
    #: ``__post_init__`` re-tuples.
    lint_rules: Tuple[str, ...] = ()
    #: Last heartbeat-reported position (``arm/phase``), for the job
    #: summary; None when the worker never reported.
    progress: Optional[str] = None
    #: Furthest phase any arm's salvage completed when the job
    #: ultimately failed (0: nothing salvaged).
    salvaged_phase: int = 0

    def __post_init__(self) -> None:
        self.lint_rules = tuple(self.lint_rules)

    @property
    def failed(self) -> bool:
        return self.status in ("failed", "timeout", "stall")

    @property
    def skipped_lint(self) -> bool:
        return self.status == "skipped-lint"

    @property
    def reason(self) -> str:
        """Short annotation for degraded table rows."""
        if self.status == "timeout":
            return "timeout"
        if self.status == "stall":
            return (f"stall at {self.progress}" if self.progress
                    else "stall")
        if self.skipped_lint:
            return "lint: " + ",".join(self.lint_rules or ("?",))
        if self.error:
            last = self.error.strip().splitlines()[-1]
            return last[:60]
        return self.status


@dataclass
class HarnessConfig:
    """Resilience knobs for :func:`run_suite_resilient`.

    Attributes
    ----------
    timeout:
        Per-attempt wall-clock limit in seconds (None: unlimited).
        Enforced only in isolated mode -- in-process workers cannot be
        interrupted safely.
    stall_timeout:
        Kill a worker whose heartbeat goes quiet for this many
        seconds (None: stall detection off).  Isolated mode only.
        Independent of ``timeout``: the wall clock bounds total work,
        the stall timeout bounds silence.
    heartbeat_interval:
        Seconds between worker heartbeats.  Keep well under
        ``stall_timeout`` (a worker is expected to miss no more than
        a couple of beats while healthy).
    retries:
        Extra attempts after the first failure (total = retries + 1).
    jobs:
        Worker subprocesses running concurrently.
    run_dir:
        Checkpoint directory; None disables checkpointing (and
        phase-boundary salvage, which lives under it).
    resume:
        Reuse completed runs found in ``run_dir`` instead of
        recomputing them (recorded as ``skipped-resume``).
    backoff_base:
        Minimum retry delay in seconds.  Retries use decorrelated
        jitter seeded from the job identity: the delay is drawn
        uniformly from ``[base, 3 * previous_delay]`` and capped at
        ``backoff_cap``, so simultaneous worker failures don't retry
        in lockstep while staying deterministic per job.
    backoff_cap:
        Upper bound on any single retry delay.
    perturb_final_seed:
        On the last attempt, offset the seed by ``SEED_PERTURBATION``.
        Skipped when the job has salvage on disk -- resuming salvaged
        phases under a different seed would corrupt the result.
    isolate:
        Run jobs in subprocesses (default).  ``False`` keeps the old
        in-process behavior with retry/backoff/checkpoint support but
        no timeouts and no crash isolation beyond ``except``.
    preflight:
        Lint every distinct circuit (structural rules only) before
        scheduling and record jobs on broken circuits as
        ``skipped-lint`` instead of running them.  ``False`` restores
        the lint-free behavior.
    chaos:
        Fault-injection callable ``(spec, attempt) -> directive`` --
        see the module docstring.  When None, the ``REPRO_CHAOS``
        environment variable is consulted (see
        :func:`repro.experiments.supervision.chaos_from_env`).
    """

    timeout: Optional[float] = None
    stall_timeout: Optional[float] = None
    heartbeat_interval: float = 1.0
    retries: int = 0
    jobs: int = 1
    run_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    perturb_final_seed: bool = True
    isolate: bool = True
    preflight: bool = True
    chaos: Optional[ChaosFn] = None


@dataclass
class SuiteOutcome:
    """Everything a resilient campaign produced."""

    runs: List[CircuitRun]
    records: List[JobRecord] = field(default_factory=list)
    #: Ultimately-failed jobs that left salvage behind, keyed by
    #: circuit: phase-level progress and known coverage figures (the
    #: ``PARTIAL(phase k/4)`` table rows).
    partials: Dict[str, PartialRun] = field(default_factory=dict)

    @property
    def failed_records(self) -> List[JobRecord]:
        return [r for r in self.records if r.failed]

    @property
    def skipped_records(self) -> List[JobRecord]:
        """Jobs the pre-flight lint refused to run."""
        return [r for r in self.records if r.skipped_lint]

    @property
    def ok(self) -> bool:
        """True iff no job ultimately failed (lint skips are
        deliberate outcomes, not failures)."""
        return not self.failed_records

    @property
    def failures(self) -> Dict[str, str]:
        """``{circuit: reason}`` for the table renderers.

        Covers both failed and lint-skipped jobs; the latter carry a
        ``lint: <rule,...>`` reason that the renderers turn into a
        ``SKIPPED(...)`` row.
        """
        out = {r.circuit: r.reason for r in self.failed_records}
        for r in self.skipped_records:
            out.setdefault(r.circuit, r.reason)
        return out

    def failure_summary(self) -> Table:
        """One row per job, for the end-of-campaign report."""
        table = Table("Job summary",
                      ["circuit", "seed", "status", "attempts",
                       "seconds", "progress", "salvaged", "lint"])
        for record in self.records:
            salvaged = (f"phase {record.salvaged_phase}/4"
                        if record.salvaged_phase else None)
            table.add_row(record.circuit, record.seed, record.status,
                          record.attempts, record.seconds,
                          record.progress, salvaged,
                          ",".join(record.lint_rules) or None)
        return table


# ----------------------------------------------------------------------
# Run store (checkpoint)
# ----------------------------------------------------------------------

class RunStore:
    """Append-only JSONL checkpoint of completed runs + job journal.

    Every appended line carries the versioned CRC32 envelope of
    :mod:`repro.experiments.salvage`; loads verify each line and
    **quarantine** (move to ``quarantine/``, repair the store) any
    that fail, so corruption costs one recompute, never the campaign.
    Legacy pre-envelope lines load unchanged.
    """

    RUNS_NAME = "runs.jsonl"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.runs_path = self.run_dir / self.RUNS_NAME
        self.journal_path = self.run_dir / self.JOURNAL_NAME

    @property
    def salvage(self) -> SalvageStore:
        """The per-job phase-boundary salvage store under this dir."""
        return SalvageStore(self.run_dir)

    def append_run(self, spec: JobSpec, run: CircuitRun) -> None:
        line = encode_line({"circuit": spec.circuit, "seed": spec.seed,
                            "run": reporting.run_to_dict(run)})
        self._append(self.runs_path, line)

    def append_record(self, record: JobRecord) -> None:
        self._append(self.journal_path, encode_line(asdict(record)))

    @staticmethod
    def _append(path: Path, line: str) -> None:
        with open(path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_runs(self) -> Tuple[Dict[Tuple[str, int], CircuitRun], int]:
        """Checkpointed runs keyed by (circuit, seed).

        Returns ``(runs, n_quarantined)``.  Lines failing CRC/version
        verification are quarantined; verified lines whose payload
        nevertheless cannot rebuild a run (schema drift) are counted
        too but left in place.
        """
        runs: Dict[Tuple[str, int], CircuitRun] = {}
        payloads, corrupt = load_jsonl(self.runs_path, self.run_dir)
        for entry in payloads:
            try:
                key = (entry["circuit"], entry["seed"])
                runs[key] = reporting.run_from_dict(entry["run"])
            except Exception:
                corrupt += 1
        return runs, corrupt

    def load_records(self) -> List[JobRecord]:
        """Every JobRecord ever journalled (corrupt lines
        quarantined)."""
        records: List[JobRecord] = []
        payloads, _corrupt = load_jsonl(self.journal_path, self.run_dir)
        for payload in payloads:
            try:
                records.append(JobRecord(**payload))
            except Exception:
                continue
        return records

    def corrupt_checkpoint(self) -> None:
        """Chaos helper: append a garbage line to the run store."""
        with open(self.runs_path, "a") as handle:
            handle.write('{"circuit": "zzz", "broken\n')


# ----------------------------------------------------------------------
# Worker (runs in the spawned subprocess)
# ----------------------------------------------------------------------

def _spec_salvage_knobs(x_fill: str,
                        power_budget: Optional[float]) -> Dict[str, Any]:
    """The knobs salvage compatibility is judged on (see
    :data:`repro.experiments.salvage.SALVAGE_KNOBS`)."""
    return {"x_fill": x_fill, "power_budget": power_budget}


def _build_hooks(circuit: str, seed: int, directive: Optional[str],
                 run_dir: Optional[str], x_fill: str,
                 power_budget: Optional[float], conn: Any,
                 heartbeat_interval: float,
                 isolated: bool) -> WorkerHooks:
    """Assemble one attempt's supervision bundle (worker side).

    Unscoped immediate directives (hang/crash/exit) are enacted right
    here, before any work; phase-scoped ones and ``corrupt-salvage``
    ride into the hooks and fire inside the pipeline.
    """
    chaos = parse_chaos(directive) if directive else None
    if chaos is not None and chaos.phase is None \
            and chaos.kind != "corrupt-salvage":
        if chaos.kind == "hang":
            freeze()  # no heartbeats ever: the stall timeout's case
        elif chaos.kind == "crash":
            raise RuntimeError("chaos: injected worker crash")
        elif chaos.kind == "exit":
            os._exit(13)
        chaos = None
    salvage = None
    if run_dir is not None:
        salvage = SalvageWriter(
            SalvageStore(run_dir), circuit, seed,
            _spec_salvage_knobs(x_fill, power_budget),
            corrupt_after_write=(chaos is not None
                                 and chaos.kind == "corrupt-salvage"))
    reporter = ProgressReporter(conn, heartbeat_interval)
    return WorkerHooks(reporter, salvage, chaos, isolated=isolated)


def _worker_main(conn, spec_dict: Dict[str, Any], seed: int,
                 directive: Optional[str],
                 run_dir: Optional[str] = None,
                 heartbeat_interval: float = 1.0) -> None:
    """Subprocess body: run one circuit job, send the result back.

    Must stay importable at module top level for ``spawn``.  The pipe
    carries ``("heartbeat", status)`` messages while the job runs and
    exactly one final ``("ok", run_dict)`` or ``("error", traceback)``;
    the heartbeat pump is stopped before the final send (the pipe is
    not safe for concurrent writers).
    """
    reporter = None
    try:
        hooks = _build_hooks(
            spec_dict["circuit"], seed, directive, run_dir,
            spec_dict.get("x_fill", "random"),
            spec_dict.get("power_budget"), conn, heartbeat_interval,
            isolated=True)
        reporter = hooks.reporter
        reporter.start()
        run = run_circuit_by_name(
            spec_dict["circuit"], seed=seed,
            arms=tuple(spec_dict["arms"]),
            with_baselines=spec_dict["with_baselines"],
            delay=bool(spec_dict.get(
                "delay", spec_dict.get("with_transition", False))),
            engine=spec_dict.get("engine", "codegen"),
            width=spec_dict.get("width", "auto"),
            candidate_scan=spec_dict.get("candidate_scan",
                                         DEFAULT_CANDIDATE_SCAN),
            x_fill=spec_dict.get("x_fill", "random"),
            power_budget=spec_dict.get("power_budget"),
            trial_batch=int(spec_dict.get("trial_batch", 64)),
            adi=bool(spec_dict.get("adi", False)),
            scoap=bool(spec_dict.get("scoap", False)),
            hooks=hooks)
        reporter.stop()
        conn.send(("ok", reporting.run_to_dict(run)))
    except BaseException:
        try:
            if reporter is not None:
                reporter.stop()
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent went away
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def _run_attempt_inline(spec: JobSpec, seed: int,
                        directive: Optional[str],
                        store: Optional[RunStore]) -> Tuple[str, Any]:
    """One attempt without process isolation (``isolate=False``).

    Phase-boundary salvage works inline too (it only needs the run
    dir); heartbeats go nowhere (no pipe) but phase-scoped chaos still
    fires, with ``stall`` degrading to a raise -- an inline worker
    cannot be killed from outside.
    """
    try:
        if directive in ("crash", "exit", "hang"):
            raise RuntimeError(f"chaos: injected {directive} (in-process)")
        run_dir = str(store.run_dir) if store is not None else None
        hooks = _build_hooks(spec.circuit, seed, directive, run_dir,
                             spec.x_fill, spec.power_budget, conn=None,
                             heartbeat_interval=0.0, isolated=False)
        run = run_circuit_by_name(
            spec.circuit, seed=seed, arms=spec.arms,
            with_baselines=spec.with_baselines,
            delay=spec.delay,
            engine=spec.engine, width=spec.width,
            candidate_scan=spec.candidate_scan,
            x_fill=spec.x_fill, power_budget=spec.power_budget,
            trial_batch=spec.trial_batch, adi=spec.adi,
            scoap=spec.scoap, hooks=hooks)
        return "ok", run
    except Exception:
        return "error", traceback.format_exc()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------

@dataclass
class _JobState:
    spec: JobSpec
    attempts: int = 0
    not_before: float = 0.0
    seconds: float = 0.0
    last_error: Optional[str] = None
    last_status: str = "failed"
    last_delay: float = 0.0
    progress: Optional[str] = None


class _ActiveWorker:
    __slots__ = ("state", "proc", "conn", "started", "deadline",
                 "last_beat")

    def __init__(self, state, proc, conn, started, deadline) -> None:
        self.state = state
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline
        # Launch counts as a beat: a worker is granted one full stall
        # window to come up before silence becomes suspicious.
        self.last_beat = started


def _attempt_seed(spec: JobSpec, attempt: int, config: HarnessConfig,
                  has_salvage: bool = False) -> int:
    """The seed this attempt runs under.

    The final-retry perturbation is skipped when salvage exists:
    salvaged phases were computed under the base seed, and resuming
    them under a perturbed one would splice two random streams into
    one result.
    """
    total = config.retries + 1
    if (config.perturb_final_seed and total > 1 and attempt == total
            and not has_salvage):
        return spec.seed + SEED_PERTURBATION
    return spec.seed


def _retry_delay(state: _JobState, config: HarnessConfig) -> float:
    """Decorrelated-jitter backoff, deterministic per (job, attempt).

    AWS-style: draw uniformly from ``[base, 3 * previous]``, capped.
    Seeded from the job identity so reruns behave identically while
    different jobs failing together spread their retries apart.
    """
    spec = state.spec
    key = f"{spec.circuit}:{spec.seed}:{state.attempts}"
    rng = random.Random(zlib.crc32(key.encode("utf-8")))
    prev = state.last_delay or config.backoff_base
    delay = rng.uniform(config.backoff_base,
                        max(config.backoff_base, prev * 3))
    delay = min(config.backoff_cap, delay)
    state.last_delay = delay
    return delay


def _progress_text(status: Dict[str, Any]) -> Optional[str]:
    """Render one heartbeat status as a short ``arm/phase`` label."""
    arm, phase = status.get("arm"), status.get("phase")
    if arm is None and phase is None:
        return None
    text = f"{arm or '?'}/{phase or '?'}"
    remaining = status.get("faults_remaining")
    if remaining is not None:
        text += f" ({remaining} faults left)"
    return text


def _preflight_rules(circuit: str,
                     cache: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    """Error-severity lint rule ids for one suite circuit (cached).

    Only the cheap structural rules run (``xinit=False``).  Resolution
    or analysis problems never fail the pre-flight: a circuit that is
    unknown, unbuildable or un-lintable returns no rules and its job
    runs (and fails) normally, keeping the real traceback.
    """
    if circuit not in cache:
        rules: Tuple[str, ...] = ()
        try:
            from ..analysis.rules import lint_netlist
            from ..circuits.suite import profile as lookup
            report = lint_netlist(lookup(circuit).build(), xinit=False)
            rules = tuple(dict.fromkeys(d.rule for d in report.errors))
        except Exception:
            pass
        cache[circuit] = rules
    return cache[circuit]


def _chaos_directive(config: HarnessConfig, store: Optional[RunStore],
                     spec: JobSpec, attempt: int) -> Optional[str]:
    if config.chaos is None:
        return None
    directive = config.chaos(spec, attempt)
    if directive is None:
        return None
    parse_chaos(directive)  # validate before shipping to a worker
    if directive == "corrupt-checkpoint":
        if store is not None:
            store.corrupt_checkpoint()
        return None
    return directive


def run_jobs(specs: Sequence[JobSpec],
             config: Optional[HarnessConfig] = None,
             verbose: bool = False) -> SuiteOutcome:
    """Execute ``specs`` resiliently; the core of the harness.

    Jobs run in up to ``config.jobs`` worker subprocesses; each attempt
    gets ``config.timeout`` seconds; failures retry with exponential
    backoff.  With ``config.run_dir`` set, completed runs checkpoint
    incrementally, and ``config.resume`` skips jobs the checkpoint
    already holds.  Runs come back in ``specs`` order (failed jobs are
    simply absent); consult :attr:`SuiteOutcome.records` for the
    per-job story.
    """
    config = config or HarnessConfig()
    if config.chaos is None:
        env_chaos = os.environ.get("REPRO_CHAOS")
        if env_chaos:
            config = replace(config, chaos=chaos_from_env(env_chaos))
    store = RunStore(config.run_dir) if config.run_dir else None

    results: Dict[Tuple[str, int], CircuitRun] = {}
    records: List[JobRecord] = []
    partials: Dict[str, PartialRun] = {}
    pending: List[_JobState] = []
    lint_cache: Dict[str, Tuple[str, ...]] = {}

    checkpoint: Dict[Tuple[str, int], CircuitRun] = {}
    if store is not None and config.resume:
        checkpoint, corrupt = store.load_runs()
        if corrupt and verbose:  # pragma: no cover - cosmetic
            print(f"  (checkpoint: skipped {corrupt} corrupt line(s))")

    for spec in specs:
        cached = checkpoint.get(spec.key)
        if cached is not None and _checkpoint_usable(cached, spec):
            results[spec.key] = cached
            record = JobRecord(spec.circuit, spec.seed, "skipped-resume",
                               attempts=0, seconds=0.0)
            records.append(record)
            if store is not None:
                store.append_record(record)
            if verbose:
                print(f"  {spec.circuit}: resumed from checkpoint")
            continue
        if config.preflight:
            rules = _preflight_rules(spec.circuit, lint_cache)
            if rules:
                record = JobRecord(spec.circuit, spec.seed, "skipped-lint",
                                   attempts=0, seconds=0.0,
                                   error="lint: " + ", ".join(rules),
                                   lint_rules=rules)
                records.append(record)
                if store is not None:
                    store.append_record(record)
                if verbose:
                    print(f"  {spec.circuit}: skipped "
                          f"(lint: {', '.join(rules)})")
                continue
        pending.append(_JobState(spec))

    if config.isolate:
        _run_isolated(pending, config, store, results, records,
                      partials, verbose)
    else:
        _run_inline(pending, config, store, results, records,
                    partials, verbose)

    runs = [results[s.key] for s in specs if s.key in results]
    return SuiteOutcome(runs=runs, records=records, partials=partials)


def _checkpoint_usable(run: CircuitRun, spec: JobSpec) -> bool:
    """A cached run satisfies the request (arms, baselines, delay,
    and every result-shaping knob)."""
    if not all(a in run.arms for a in spec.arms):
        return False
    if spec.with_baselines and run.baseline4 is None:
        return False
    # A delay request needs the full report; checkpoints from the old
    # ``with_transition`` era carried only the flat coverage dict and
    # are recomputed.
    if spec.delay and run.delay is None:
        return False
    if run.knobs:
        # Modern checkpoints record the exact knobs they were
        # produced under; any mismatch means recompute.
        for name in CHECKPOINT_KNOBS:
            recorded = run.knobs.get(name, _KNOB_DEFAULTS.get(name))
            if recorded != getattr(spec, name):
                return False
        return True
    # Legacy checkpoints (pre-knob) recorded at most the power pair.
    # The power knobs change the produced test sets, so a checkpoint
    # only matches when it recorded the same knobs.  A pre-power
    # checkpoint (run.power is None) recorded no knobs and can only
    # satisfy the defaults it was produced under.
    if run.power is not None:
        if run.power.x_fill != spec.x_fill:
            return False
        if run.power.budget != spec.power_budget:
            return False
    elif spec.x_fill != "random" or spec.power_budget is not None:
        return False
    return True


def _finish(state: _JobState, status: str, payload: Any,
            config: HarnessConfig, store: Optional[RunStore],
            results: Dict[Tuple[str, int], CircuitRun],
            records: List[JobRecord], pending: List[_JobState],
            partials: Dict[str, PartialRun], verbose: bool) -> None:
    """Record one finished attempt; reschedule or finalize the job."""
    spec = state.spec
    if status == "ok":
        run = payload if isinstance(payload, CircuitRun) \
            else reporting.run_from_dict(payload)
        results[spec.key] = run
        record = JobRecord(spec.circuit, spec.seed, "ok",
                           attempts=state.attempts,
                           seconds=round(state.seconds, 3),
                           progress=state.progress)
        records.append(record)
        if store is not None:
            store.append_run(spec, run)
            store.append_record(record)
            # The job checkpointed whole; its salvage is now stale.
            store.salvage.discard(spec.circuit, spec.seed)
        if verbose:
            print(f"  {spec.circuit}: ok in {state.seconds:.1f}s "
                  f"(attempt {state.attempts})")
        return

    state.last_status = status
    state.last_error = payload
    if state.attempts <= config.retries:
        delay = _retry_delay(state, config)
        state.not_before = time.monotonic() + delay
        pending.append(state)
        if verbose:
            print(f"  {spec.circuit}: {status} (attempt "
                  f"{state.attempts}), retrying in {delay:.1f}s")
        return

    salvaged_phase = 0
    if store is not None:
        payload_salvage = store.salvage.load(spec.circuit, spec.seed)
        if payload_salvage is not None and salvage_usable(
                payload_salvage,
                _spec_salvage_knobs(spec.x_fill, spec.power_budget),
                spec.seed):
            partial = PartialRun.from_salvage(
                payload_salvage,
                reason=f"{status} after {state.attempts} attempt(s)")
            if partial.phases_completed:
                partials[spec.circuit] = partial
                salvaged_phase = partial.phases_completed

    record = JobRecord(spec.circuit, spec.seed, status,
                       attempts=state.attempts,
                       seconds=round(state.seconds, 3),
                       error=payload,
                       progress=state.progress,
                       salvaged_phase=salvaged_phase)
    records.append(record)
    if store is not None:
        store.append_record(record)
    if verbose:
        print(f"  {spec.circuit}: {status} after "
              f"{state.attempts} attempt(s)")


def _has_salvage(store: Optional[RunStore], spec: JobSpec) -> bool:
    return store is not None and store.salvage.exists(spec.circuit,
                                                      spec.seed)


def _run_inline(pending: List[_JobState], config: HarnessConfig,
                store: Optional[RunStore],
                results: Dict[Tuple[str, int], CircuitRun],
                records: List[JobRecord],
                partials: Dict[str, PartialRun],
                verbose: bool) -> None:
    """Serial in-process execution (no isolation, no timeouts)."""
    while pending:
        state = pending.pop(0)
        wait = state.not_before - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        state.attempts += 1
        directive = _chaos_directive(config, store, state.spec,
                                     state.attempts)
        seed = _attempt_seed(state.spec, state.attempts, config,
                             _has_salvage(store, state.spec))
        started = time.monotonic()
        status, payload = _run_attempt_inline(state.spec, seed,
                                              directive, store)
        state.seconds += time.monotonic() - started
        _finish(state, "ok" if status == "ok" else "failed", payload,
                config, store, results, records, pending, partials,
                verbose)


def _run_isolated(pending: List[_JobState], config: HarnessConfig,
                  store: Optional[RunStore],
                  results: Dict[Tuple[str, int], CircuitRun],
                  records: List[JobRecord],
                  partials: Dict[str, PartialRun],
                  verbose: bool) -> None:
    """Subprocess execution with timeouts, stall detection and bounded
    parallelism."""
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    max_workers = max(1, config.jobs)
    active: List[_ActiveWorker] = []

    def launch(state: _JobState) -> None:
        state.attempts += 1
        directive = _chaos_directive(config, store, state.spec,
                                     state.attempts)
        seed = _attempt_seed(state.spec, state.attempts, config,
                             _has_salvage(store, state.spec))
        run_dir = str(store.run_dir) if store is not None else None
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, asdict(state.spec), seed, directive,
                  run_dir, config.heartbeat_interval),
            daemon=True)
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = now + config.timeout if config.timeout else None
        active.append(_ActiveWorker(state, proc, parent_conn, now,
                                    deadline))

    def settle(worker: _ActiveWorker, status: str, payload: Any) -> None:
        active.remove(worker)
        worker.conn.close()
        worker.state.seconds += time.monotonic() - worker.started
        _finish(worker.state, status, payload, config, store, results,
                records, pending, partials, verbose)

    def drain(worker: _ActiveWorker) -> bool:
        """Consume pipe messages; True if the worker was settled.

        Heartbeats update the worker's liveness stamp and last-seen
        progress; the single final ``ok``/``error`` message settles
        the job.  EOF without a final message is a hard death
        (``os._exit``, segfault).
        """
        try:
            while worker.conn.poll():
                kind, payload = worker.conn.recv()
                if kind == "heartbeat":
                    worker.last_beat = time.monotonic()
                    worker.state.progress = _progress_text(payload)
                    continue
                worker.proc.join(timeout=5)
                settle(worker, "ok" if kind == "ok" else "failed",
                       payload)
                return True
        except (EOFError, OSError):
            worker.proc.join(timeout=5)
            settle(worker, "failed",
                   f"worker died without a result "
                   f"(exit code {worker.proc.exitcode})")
            return True
        return False

    try:
        while pending or active:
            now = time.monotonic()
            ready = [s for s in pending if s.not_before <= now]
            while ready and len(active) < max_workers:
                state = ready.pop(0)
                pending.remove(state)
                launch(state)

            if not active:
                # Everything left is backing off; sleep to the nearest.
                wake = min(s.not_before for s in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            time.sleep(_POLL_INTERVAL)
            for worker in list(active):
                if drain(worker):
                    continue
                now = time.monotonic()
                if worker.deadline is not None and now >= worker.deadline:
                    worker.proc.kill()
                    worker.proc.join(timeout=5)
                    settle(worker, "timeout",
                           f"killed after exceeding the "
                           f"{config.timeout}s per-job timeout")
                elif (config.stall_timeout is not None
                      and now - worker.last_beat > config.stall_timeout):
                    worker.proc.kill()
                    worker.proc.join(timeout=5)
                    last = worker.state.progress or "no heartbeat seen"
                    settle(worker, "stall",
                           f"killed after {config.stall_timeout}s "
                           f"without a heartbeat (last: {last})")
                elif not worker.proc.is_alive():
                    worker.proc.join()
                    settle(worker, "failed",
                           f"worker died without a result "
                           f"(exit code {worker.proc.exitcode})")
    finally:
        for worker in active:  # pragma: no cover - only on hard errors
            worker.proc.kill()
            worker.proc.join(timeout=5)


def run_suite_resilient(
    profiles: Optional[Sequence[CircuitProfile]] = None,
    quick: bool = True,
    seed: int = 1,
    arms: Sequence[str] = ("seqgen", "random"),
    with_baselines: bool = True,
    delay: bool = False,
    engine: str = "codegen",
    width: Union[int, str] = "auto",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    trial_batch: int = 64,
    adi: bool = False,
    scoap: bool = False,
    config: Optional[HarnessConfig] = None,
    verbose: bool = False,
) -> SuiteOutcome:
    """Resilient drop-in for :func:`repro.experiments.runner.run_suite`.

    Same experiment knobs; adds the :class:`HarnessConfig` resilience
    layer and returns a :class:`SuiteOutcome` instead of a bare list.
    Suite profiles are dispatched to workers *by name*, so explicit
    ``profiles`` must come from the suite registry.
    """
    specs = [JobSpec(circuit=p.name, seed=seed, arms=tuple(arms),
                     with_baselines=with_baselines,
                     delay=delay,
                     engine=engine, width=width,
                     candidate_scan=candidate_scan,
                     x_fill=x_fill, power_budget=power_budget,
                     trial_batch=trial_batch, adi=adi, scoap=scoap)
             for p in resolve_profiles(profiles, quick=quick)]
    return run_jobs(specs, config=config, verbose=verbose)

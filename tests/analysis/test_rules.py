"""Tests for the structural lint rules (netlist- and bench-level)."""

from repro.analysis import lint_bench_path, lint_bench_text, lint_netlist
from repro.circuits import library, synth
from repro.circuits.netlist import Netlist


def _rules(report):
    return {d.rule for d in report.diagnostics}


class TestNetlistRules:
    def test_s27_is_clean(self):
        report = lint_netlist(library.s27())
        assert report.clean, report.render()

    def test_undriven_net(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "AND", ["a", "ghost"])
        net.add_output("g1")
        report = lint_netlist(net)
        assert "struct.undriven-net" in _rules(report)
        assert not report.ok
        assert any("ghost" in d.nets
                   for d in report.by_rule("struct.undriven-net"))

    def test_undriven_primary_output(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "NOT", ["a"])
        net.add_output("nowhere")
        report = lint_netlist(net)
        assert "struct.undriven-net" in _rules(report)

    def test_comb_cycle(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "AND", ["a", "g2"])
        net.add_gate("g2", "NOT", ["g1"])
        net.add_output("g1")
        report = lint_netlist(net)
        cycles = report.by_rule("struct.comb-cycle")
        assert cycles and cycles[0].severity == "error"
        assert set(cycles[0].nets) == {"g1", "g2"}

    def test_self_loop_is_a_cycle(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "AND", ["a", "g1"])
        net.add_output("g1")
        assert "struct.comb-cycle" in _rules(lint_netlist(net))

    def test_sequential_feedback_is_not_a_cycle(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("d", "XOR", ["a", "q"])
        net.add_dff("q", "d")
        net.add_output("d")
        assert "struct.comb-cycle" not in _rules(lint_netlist(net))

    def test_errors_stop_deeper_passes(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "AND", ["a", "ghost"])
        net.add_output("g1")
        report = lint_netlist(net)
        # No post-compile or xinit rules after a structural error.
        assert all(r.startswith("struct.") for r in report.rule_ids)

    def test_dead_cone_warning(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "NOT", ["a"])   # feeds only dangling g2
        net.add_gate("g2", "NOT", ["g1"])  # dangling root
        net.add_gate("o", "BUF", ["a"])
        net.add_output("o")
        report = lint_netlist(net)
        dead = report.by_rule("struct.dead-cone")
        assert [d.nets for d in dead] == [("g1",)]
        assert report.ok  # warnings only

    def test_input_isolated_ff(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("d", "NOT", ["q"])    # no PI in the cone
        net.add_dff("q", "d")
        net.add_gate("o", "AND", ["a", "q"])
        net.add_output("o")
        report = lint_netlist(net, xinit=False)
        iso = report.by_rule("struct.input-isolated-ff")
        assert [d.nets for d in iso] == [("q",)]

    def test_xinit_opt_out(self):
        net = synth.generate("t", 4, 3, 5, 40, seed=4941)
        with_x = lint_netlist(net)
        without = lint_netlist(net, xinit=False)
        assert "xinit.not-synchronizable" in with_x.rule_ids
        assert "xinit.not-synchronizable" not in without.rule_ids

    def test_lint_does_not_mutate_uncompiled_input(self):
        net = Netlist("t")
        net.add_input("a")
        net.add_gate("g1", "NOT", ["a"])
        net.add_output("g1")
        assert not net.is_compiled()
        lint_netlist(net)
        assert not net.is_compiled()  # linted a copy


class TestBenchRules:
    def test_clean_bench(self):
        text = ("INPUT(a)\nINPUT(b)\n"
                "g1 = AND(a, b)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert report.clean, report.render()

    def test_multi_driver(self):
        text = ("INPUT(a)\n"
                "g1 = NOT(a)\ng1 = BUF(a)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert "bench.multi-driver" in report.rule_ids

    def test_input_decl_registers_driver(self):
        text = ("INPUT(a)\na = NOT(a)\nOUTPUT(a)\n")
        report = lint_bench_text(text)
        assert "bench.multi-driver" in report.rule_ids

    def test_floating_input(self):
        text = ("INPUT(a)\ng1 = AND()\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert "bench.floating-input" in report.rule_ids

    def test_const_gates_allowed_no_inputs(self):
        text = ("INPUT(a)\nc = CONST1()\n"
                "g1 = AND(a, c)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert "bench.floating-input" not in report.rule_ids

    def test_unknown_type(self):
        text = ("INPUT(a)\ng1 = FROB(a)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert "bench.unknown-type" in report.rule_ids

    def test_syntax_garbage(self):
        report = lint_bench_text("INPUT(a)\nthis is not bench\n")
        assert "bench.syntax" in report.rule_ids

    def test_raw_errors_stop_deep_lint(self):
        text = ("INPUT(a)\ng1 = NOT(a)\ng1 = BUF(a)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert all(r.startswith("bench.") for r in report.rule_ids)

    def test_deep_rules_after_clean_raw_pass(self):
        # Raw text is fine, but the netlist has a combinational cycle.
        text = ("INPUT(a)\n"
                "g1 = AND(a, g2)\ng2 = NOT(g1)\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        assert "struct.comb-cycle" in report.rule_ids

    def test_lint_bench_path(self, tmp_path):
        p = tmp_path / "mini.bench"
        p.write_text("INPUT(a)\ng1 = NOT(a)\nOUTPUT(g1)\n")
        report = lint_bench_path(p)
        assert report.circuit == "mini"
        assert report.clean


class TestBenchRawTextRobustness:
    """The raw-text pass must survive real-world .bench formatting:
    CRLF line endings, comment-only files, and blank-line padding --
    with line numbers that still point at the physical line."""

    CLEAN = "INPUT(a)\nINPUT(b)\ng1 = AND(a, b)\nOUTPUT(g1)\n"

    def test_crlf_input_is_clean(self):
        report = lint_bench_text(self.CLEAN.replace("\n", "\r\n"))
        assert report.clean, report.render()

    def test_crlf_preserves_diagnoses_and_line_numbers(self):
        text = ("INPUT(a)\r\ng1 = NOT(a)\r\n"
                "g1 = BUF(a)\r\nOUTPUT(g1)\r\n")
        report = lint_bench_text(text)
        assert "bench.multi-driver" in report.rule_ids
        bad = [d for d in report.diagnostics
               if d.rule == "bench.multi-driver"]
        assert "line 3" in bad[0].message

    def test_comment_only_file(self):
        text = "# a header\n# nothing but comments\n#\n"
        report = lint_bench_text(text)
        # No gates is not a *raw* syntax problem; whatever the deep
        # pass says, the raw rules must not fire.
        assert not any(r.startswith("bench.")
                       for r in report.rule_ids), report.render()

    def test_empty_and_whitespace_file(self):
        for text in ("", "\n\n\n", "   \n\t\n"):
            report = lint_bench_text(text)
            assert not any(r.startswith("bench.")
                           for r in report.rule_ids)

    def test_blank_line_heavy_keeps_physical_line_numbers(self):
        text = ("\n\n# header\n\nINPUT(a)\n\n\n"
                "g1 = FROB(a)\n\nOUTPUT(g1)\n")
        report = lint_bench_text(text)
        bad = [d for d in report.diagnostics
               if d.rule == "bench.unknown-type"]
        assert bad and "line 8" in bad[0].message

    def test_trailing_comment_stripped(self):
        text = ("INPUT(a)  # the input\n"
                "g1 = NOT(a)  # inverter\n"
                "OUTPUT(g1)# output, no space\n")
        report = lint_bench_text(text)
        assert report.clean, report.render()

    def test_mixed_endings_and_padding(self):
        text = ("\r\nINPUT(a)\r\n\r\n  g1 = NOT(a)  \n\n"
                "OUTPUT(g1)\r\n\r\n")
        report = lint_bench_text(text)
        assert report.clean, report.render()

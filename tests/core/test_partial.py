"""Tests for the partial-scan extension."""

import pytest

from repro.circuits import library, synth
from repro.core.partial import (PartialScanPlan, compact_partial,
                                workbench_for, _find_cycle)
from repro.sim import values as V


class TestPlan:
    def test_full_plan(self, s27):
        plan = PartialScanPlan.full(s27)
        assert plan.is_full_scan
        assert plan.scanned_ffs == s27.flip_flops

    def test_positions_validated(self, s27):
        with pytest.raises(ValueError, match="out of range"):
            PartialScanPlan(s27, [7])

    def test_positions_deduped_sorted(self, s27):
        plan = PartialScanPlan(s27, [2, 0, 2])
        assert plan.positions == [0, 2]

    def test_cycle_cutting_breaks_all_cycles(self, s27):
        plan = PartialScanPlan.by_cycle_cutting(s27)
        # Rebuild the dependency graph and check acyclicity after
        # removing the chosen vertices.
        ffs = s27.flip_flops
        index = {ff: i for i, ff in enumerate(ffs)}
        edges = {i: set() for i in range(len(ffs))}
        for ff in ffs:
            d_net = s27.gates[ff].fanins[0]
            for src in s27.transitive_fanin([d_net]):
                if src in index:
                    edges[index[src]].add(index[ff])
        assert _find_cycle(edges, set(plan.positions)) is None

    def test_cycle_cutting_on_synthetic(self):
        net = synth.generate("pc", 3, 3, 8, 60, seed=3)
        plan = PartialScanPlan.by_cycle_cutting(net)
        assert 1 <= plan.n_scanned <= net.num_ffs

    def test_extra_adds_ffs(self, s27):
        base = PartialScanPlan.by_cycle_cutting(s27)
        more = PartialScanPlan.by_cycle_cutting(s27, extra=1)
        assert more.n_scanned >= base.n_scanned


class TestPartialSimulation:
    def test_scan_in_width_is_plan_width(self, s27):
        plan = PartialScanPlan(s27, [0, 2])
        wb = workbench_for(plan)
        assert wb.sim.n_state_vars == 2
        detected = wb.sim.detect([V.vec("1010")] * 3, (V.ONE, V.ZERO))
        assert isinstance(detected, set)

    def test_partial_detects_subset_of_full(self, s27):
        """Partial scan can never detect more than full scan with the
        same test (less controllability, less observability)."""
        full = workbench_for(PartialScanPlan.full(s27))
        part = workbench_for(PartialScanPlan(s27, [0, 2]))
        vectors = [V.vec("1100"), V.vec("0011"), V.vec("1111")]
        det_full = full.sim.detect(vectors, V.vec("010"),
                                   early_exit=False)
        det_part = part.sim.detect(vectors, (V.ZERO, V.ZERO),
                                   early_exit=False)
        # Same PI sequence; partial state (0,_,0) refines to (0,x,0).
        assert det_part <= det_full | det_part  # sanity
        # Stronger check: partial with all-X equals no scan-in at all.
        det_noscan = full.sim.detect(vectors, None, scan_out=False,
                                     early_exit=False)
        det_part_noscanout = part.sim.detect(
            vectors, (V.X, V.X), scan_out=False, early_exit=False)
        assert det_part_noscanout == det_noscan

    def test_embed_state(self, s27):
        wb = workbench_for(PartialScanPlan(s27, [1]))
        assert wb.sim.embed_state((V.ONE,)) == (V.X, V.ONE, V.X)
        with pytest.raises(ValueError, match="width"):
            wb.sim.embed_state((V.ONE, V.ZERO))


class TestPipeline:
    def test_end_to_end_on_s27(self, s27):
        plan = PartialScanPlan.by_cycle_cutting(s27, extra=1)
        result = compact_partial(plan, seed=1, t0_length=60)
        assert result.final_detected
        wb = workbench_for(plan)
        # Final set coverage is real: re-simulate under the plan.
        final = result.compacted_set or result.test_set
        assert final.n_state_vars == plan.n_scanned
        covered = set()
        for test in final:
            covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                     early_exit=False)
        assert result.final_detected <= covered

    def test_cost_model_uses_scan_width(self, s27):
        plan = PartialScanPlan(s27, [0])
        result = compact_partial(plan, seed=2, t0_length=40)
        final = result.compacted_set or result.test_set
        k = len(final)
        assert final.clock_cycles() == \
            (k + 1) * 1 + final.total_vectors()

    def test_partial_coverage_not_above_full(self, s27):
        full_plan = PartialScanPlan.full(s27)
        part_plan = PartialScanPlan(s27, [0])
        full_res = compact_partial(full_plan, seed=3, t0_length=40)
        part_res = compact_partial(part_plan, seed=3, t0_length=40)
        assert len(part_res.final_detected) <= \
            len(full_res.final_detected)

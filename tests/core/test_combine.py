"""Tests for Phase 4 / [4]: static compaction by combining tests."""

import pytest

from repro.core.combine import static_compact
from repro.core.scan_test import ScanTestSet, single_vector_test


def initial_set(wb, comb):
    return ScanTestSet(
        len(wb.circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb.tests])


def union_coverage(wb, test_set):
    covered = set()
    for test in test_set:
        covered |= wb.sim.detect(list(test.vectors), test.scan_in,
                                 early_exit=False)
    return covered


class TestStaticCompact:
    def test_coverage_never_drops(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial)
        after = union_coverage(wb, result.test_set)
        assert before <= after
        assert before <= result.detected

    def test_cycles_never_increase(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.test_set.clock_cycles() <= initial.clock_cycles()
        assert result.stats.initial_cycles == initial.clock_cycles()
        assert result.stats.final_cycles == \
            result.test_set.clock_cycles()

    def test_total_vectors_preserved(self, s27_bench, s27_comb):
        """Combining never adds or removes primary input vectors."""
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.test_set.total_vectors() == \
            initial.total_vectors()

    def test_accepted_count_matches_test_reduction(self, s27_bench,
                                                   s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial)
        assert result.stats.initial_tests - result.stats.final_tests == \
            result.stats.combinations_accepted

    def test_input_not_mutated(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        n_before = len(initial)
        static_compact(wb.sim, initial)
        assert len(initial) == n_before

    def test_max_sequence_length_respected(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        result = static_compact(wb.sim, initial, max_sequence_length=2)
        assert all(t.length <= 2 for t in result.test_set)

    def test_idempotent_on_compacted(self, s27_bench, s27_comb):
        """Compacting a compacted set achieves nothing further with
        the same pair ordering."""
        wb = s27_bench
        first = static_compact(wb.sim, initial_set(wb, s27_comb))
        second = static_compact(wb.sim, first.test_set)
        assert len(second.test_set) == len(first.test_set)

    def test_target_restriction(self, s27_bench, s27_comb):
        wb = s27_bench
        initial = initial_set(wb, s27_comb)
        target = set(range(0, len(wb.faults), 2))
        result = static_compact(wb.sim, initial, target=target)
        after = union_coverage(wb, result.test_set) & target
        before = union_coverage(wb, initial) & target
        assert before <= after

    def test_synthetic_circuit(self, mid_bench, mid_comb):
        wb = mid_bench
        initial = ScanTestSet(
            len(wb.circuit.ff_ids),
            [single_vector_test(t.state, t.pi) for t in mid_comb.tests])
        before = union_coverage(wb, initial)
        result = static_compact(wb.sim, initial)
        assert before <= union_coverage(wb, result.test_set)
        assert result.test_set.clock_cycles() <= initial.clock_cycles()

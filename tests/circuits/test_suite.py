"""Tests for the paper benchmark suite definitions."""

import pytest

from repro.circuits import suite


class TestSuite:
    def test_quick_subset_of_full(self):
        full = {p.name for p in suite.paper_suite()}
        quick = {p.name for p in suite.quick_suite()}
        assert quick <= full
        assert len(quick) >= 3

    def test_profiles_build_and_match_ff_counts(self):
        for profile in suite.quick_suite():
            net = profile.build()
            if "ff" in profile.paper:
                assert net.num_ffs == profile.paper["ff"], profile.name

    def test_profile_lookup(self):
        assert suite.profile("s27").name == "s27"
        with pytest.raises(KeyError, match="unknown suite circuit"):
            suite.profile("nonexistent")

    def test_suite_flag(self):
        assert len(suite.suite(quick=True)) < len(suite.suite(quick=False))

    def test_builds_are_fresh_instances(self):
        profile = suite.profile("s27")
        assert profile.build() is not profile.build()

    def test_paper_metadata_present_for_paper_circuits(self):
        for profile in suite.paper_suite():
            if profile.name == "s27":
                continue  # s27 is our own exact-circuit addition
            assert "faults" in profile.paper, profile.name
            assert "ff" in profile.paper, profile.name

    def test_budgets_positive(self):
        for profile in suite.paper_suite():
            assert profile.t0_length > 0
            assert profile.seq_budget > 0

"""Tests for three-valued scalars and word packing."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim import values as V


class TestLiterals:
    @pytest.mark.parametrize("char,expected", [
        ("0", V.ZERO), ("1", V.ONE), ("x", V.X), ("X", V.X), ("-", V.X)])
    def test_lit(self, char, expected):
        assert V.lit(char) == expected

    def test_bad_literal(self):
        with pytest.raises(ValueError, match="invalid logic literal"):
            V.lit("2")

    def test_vec_roundtrip(self):
        assert V.vec_str(V.vec("01x")) == "01x"

    def test_is_binary(self):
        assert V.is_binary(V.vec("0101"))
        assert not V.is_binary(V.vec("01x1"))


class TestPacking:
    def test_pack_scalar_zero(self):
        assert V.pack_scalar(V.ZERO, 0b111) == (0b111, 0)

    def test_pack_scalar_one(self):
        assert V.pack_scalar(V.ONE, 0b101) == (0, 0b101)

    def test_pack_scalar_x(self):
        assert V.pack_scalar(V.X, 0b11) == (0, 0)

    def test_pack_bad_scalar(self):
        with pytest.raises(ValueError):
            V.pack_scalar(7, 1)

    @given(st.sampled_from([V.ZERO, V.ONE, V.X]),
           st.integers(0, 20))
    def test_pack_unpack_roundtrip(self, value, machine):
        mask = (1 << 21) - 1
        zero, one = V.pack_scalar(value, mask)
        assert V.word_scalar(zero, one, machine) == value

    def test_word_scalar_default_machine(self):
        assert V.word_scalar(1, 0) == V.ZERO
        assert V.word_scalar(0, 1) == V.ONE
        assert V.word_scalar(0, 0) == V.X


class TestDiffMask:
    def test_good_one_sees_zeros(self):
        assert V.diff_mask(0b0110, 0b1001, V.ONE) == 0b0110

    def test_good_zero_sees_ones(self):
        assert V.diff_mask(0b0110, 0b1001, V.ZERO) == 0b1001

    def test_good_x_sees_nothing(self):
        assert V.diff_mask(0b1111, 0b0000, V.X) == 0


class TestVectors:
    def test_random_binary_vector(self):
        rng = random.Random(0)
        vec = V.random_binary_vector(50, rng)
        assert len(vec) == 50
        assert V.is_binary(vec)

    def test_all_x(self):
        assert V.all_x(3) == (V.X, V.X, V.X)

    def test_fill_x_preserves_binary(self):
        rng = random.Random(1)
        filled = V.fill_x((V.ONE, V.X, V.ZERO, V.X), rng)
        assert filled[0] == V.ONE
        assert filled[2] == V.ZERO
        assert V.is_binary(filled)

    @given(st.lists(st.sampled_from([V.ZERO, V.ONE, V.X]), max_size=30))
    def test_fill_x_always_binary(self, vec):
        rng = random.Random(2)
        assert V.is_binary(V.fill_x(tuple(vec), rng))


class TestFillStrategies:
    """The :func:`V.fill_x` contract, per strategy."""

    vectors = st.lists(st.sampled_from([V.ZERO, V.ONE, V.X]),
                       max_size=30).map(tuple)

    @given(vectors, st.sampled_from(V.FILL_STRATEGIES),
           st.integers(0, 1000))
    def test_fills_only_x_positions(self, vec, strategy, seed):
        filled = V.fill_x(vec, random.Random(seed), strategy=strategy)
        assert len(filled) == len(vec)
        assert V.is_binary(filled)
        for before, after in zip(vec, filled):
            if before in (V.ZERO, V.ONE):
                assert after == before

    @given(vectors, st.sampled_from(V.FILL_STRATEGIES),
           st.integers(0, 1000))
    def test_deterministic_under_seeded_rng(self, vec, strategy, seed):
        first = V.fill_x(vec, random.Random(seed), strategy=strategy)
        second = V.fill_x(vec, random.Random(seed), strategy=strategy)
        assert first == second

    @given(vectors, st.integers(0, 1000))
    def test_random_consumes_one_draw_per_x(self, vec, seed):
        """The random strategy's rng consumption is exactly one
        ``randint(0, 1)`` per X, in vector order -- the invariant
        that keeps historical runs byte-identical."""
        filled = V.fill_x(vec, random.Random(seed), strategy="random")
        rng = random.Random(seed)
        expected = tuple(v if v in (V.ZERO, V.ONE)
                         else rng.randint(0, 1) for v in vec)
        assert filled == expected

    @given(vectors, st.sampled_from(("fill0", "fill1", "adjacent")),
           st.integers(0, 1000))
    def test_deterministic_strategies_never_touch_rng(self, vec,
                                                      strategy, seed):
        rng = random.Random(seed)
        state = rng.getstate()
        V.fill_x(vec, rng, strategy=strategy)
        assert rng.getstate() == state

    def test_fill0_fill1(self):
        vec = V.vec("x1x0xx")
        rng = random.Random(0)
        assert V.vec_str(V.fill_x(vec, rng, strategy="fill0")) == \
            "010000"
        assert V.vec_str(V.fill_x(vec, rng, strategy="fill1")) == \
            "111011"

    def test_adjacent_copies_preceding_value(self):
        rng = random.Random(0)
        assert V.vec_str(V.fill_x(V.vec("x1x0xx"), rng,
                                  strategy="adjacent")) == "111000"

    def test_adjacent_leading_run_copies_first_specified(self):
        rng = random.Random(0)
        assert V.vec_str(V.fill_x(V.vec("xx1x"), rng,
                                  strategy="adjacent")) == "1111"

    def test_adjacent_all_x_fills_zero(self):
        rng = random.Random(0)
        assert V.vec_str(V.fill_x(V.vec("xxx"), rng,
                                  strategy="adjacent")) == "000"

    @given(vectors)
    def test_adjacent_never_adds_transitions(self, vec):
        """Adjacent fill yields the minimum-transition completion: no
        0->1/1->0 boundary exists that was not already forced by two
        specified bits."""
        filled = V.fill_x(vec, random.Random(0), strategy="adjacent")
        specified = [v for v in vec if v in (V.ZERO, V.ONE)]
        forced = sum(1 for a, b in zip(specified, specified[1:])
                     if a != b)
        actual = sum(1 for a, b in zip(filled, filled[1:]) if a != b)
        assert actual == forced

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown X-fill"):
            V.fill_x(V.vec("x"), random.Random(0), strategy="bogus")

    def test_strategy_registry(self):
        assert V.FILL_STRATEGIES == ("random", "fill0", "fill1",
                                     "adjacent")

"""Per-circuit experiment runner.

One :class:`CircuitRun` gathers everything the paper's five tables need
for one circuit: the combinational test set, both arms of the proposed
procedure (sequential-generator ``T0`` and random ``T0``), the [4]
static baseline, the [2,3]-style dynamic baseline, and (optionally)
transition-fault coverage of the final test sets.

Runs are deterministic for a given profile + seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import api
from ..atpg import comb_set as comb_set_mod
from ..atpg import random_gen, seqgen
from ..circuits.suite import CircuitProfile, suite
from ..core.combine import CombineResult
from ..core.dynamic import DynamicResult
from ..core.phase1 import DEFAULT_CANDIDATE_SCAN
from ..core.proposed import ProposedResult
from ..core.scan_test import ScanTestSet
from ..delay.clocking import DelayReport, measure_delay
from ..delay.transition import TransitionSim
from ..power.activity import ActivityEngine, PowerReport


@dataclass
class ArmResult:
    """One arm (T0 source) of the proposed procedure."""

    t0_source: str
    t0_length: int
    result: ProposedResult
    seconds: float


@dataclass
class CircuitRun:
    """All measurements for one suite circuit."""

    profile: CircuitProfile
    n_ffs: int
    n_gates: int
    n_faults: int
    n_detectable: int
    comb_tests: int
    arms: Dict[str, ArmResult]
    baseline4: Optional[CombineResult]
    dynamic: Optional[DynamicResult]
    #: Transition-fault coverage (%) per final test set, kept as a
    #: flat dict for the at-speed coverage table and for legacy
    #: checkpoints; :attr:`delay` carries the full report.
    transition: Dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    #: Engine instrumentation (``SimCounters.as_dict()`` of the
    #: sequential simulator, summed over everything this run did).
    counters: Dict[str, Any] = field(default_factory=dict)
    #: Structural lint findings for the circuit, as
    #: ``Diagnostic.to_dict()`` dicts (JSON-able; see
    #: :mod:`repro.analysis.diagnostics`).  Empty for clean circuits
    #: and for runs restored from pre-analyzer checkpoints.
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    #: Power measurements of the final test sets (``None`` for runs
    #: restored from pre-power checkpoints); see
    #: :class:`repro.power.activity.PowerReport`.
    power: Optional[PowerReport] = None
    #: At-speed quality of the final test sets: TDF coverage plus the
    #: test-clock cycle budget (``None`` unless the run was produced
    #: with ``delay=True``); see
    #: :class:`repro.delay.clocking.DelayReport`.
    delay: Optional[DelayReport] = None
    #: The result-shaping knobs this run was produced under (engine,
    #: width, candidate_scan, x_fill, power_budget).  The harness
    #: compares these against a resumed job's spec so a checkpoint
    #: written under different knobs is recomputed, not reused.
    #: Empty for runs restored from pre-knob checkpoints.
    knobs: Dict[str, Any] = field(default_factory=dict)
    #: Faults the static fault-space analyzer *proved* untestable
    #: (constant lines, unobservable cones, const-blocked paths; see
    #: :mod:`repro.analysis.faultspace`).  These are excluded from
    #: simulation and can never count against coverage.  Zero for runs
    #: restored from pre-analyzer checkpoints.
    n_untestable: int = 0

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def lint_rules(self) -> List[str]:
        """Unique rule ids among :attr:`diagnostics`, in pass order."""
        seen: List[str] = []
        for d in self.diagnostics:
            rule = str(d.get("rule", ""))
            if rule and rule not in seen:
                seen.append(rule)
        return seen


def run_circuit(
    profile: CircuitProfile,
    seed: int = 1,
    arms: Sequence[str] = ("seqgen", "random"),
    with_baselines: bool = True,
    delay: bool = False,
    engine: str = "codegen",
    width="auto",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    trial_batch: int = 64,
    adi: bool = False,
    scoap: bool = False,
    hooks: Optional[Any] = None,
) -> CircuitRun:
    """Run every experiment on one circuit.

    Parameters
    ----------
    profile:
        Suite profile (carries the circuit builder and budgets).
    seed:
        Master seed.
    arms:
        Which ``T0`` sources to run ("seqgen" and/or "random").
    with_baselines:
        Also run the [4] and [2,3] baselines.
    delay:
        Also measure at-speed quality of the final test sets:
        transition-fault coverage (wide-word route when available)
        plus the test-clock cycle budget, recorded as
        :attr:`CircuitRun.delay` (and, flattened, in
        :attr:`CircuitRun.transition`).
    engine, width:
        Simulation backend (``"codegen"``, ``"interp"``, ``"numpy"``
        or ``"auto"``) and fault-packing policy, forwarded to
        :meth:`repro.api.Workbench.for_netlist`.
    candidate_scan:
        Phase-1 Step-2 mode ("lanes" or "scalar"), forwarded to
        :func:`repro.api.compact_tests`.
    x_fill, power_budget:
        Don't-care fill strategy and optional peak shift-WTM budget,
        forwarded to :func:`repro.api.compact_tests` /
        :func:`repro.api.baseline_static`.  The power of every final
        test set is measured regardless (it is cheap) and recorded in
        :attr:`CircuitRun.power`.
    trial_batch, adi:
        Lane budget for batched trial simulation and the
        Accidental-Detection-Index ordering switch, forwarded to
        :func:`repro.api.compact_tests` (with the comb-set ADI census
        when ``adi`` is on).  ``trial_batch`` never changes results;
        ``adi`` off keeps the run byte-identical to prior versions.
    scoap:
        SCOAP testability-ordering switch, forwarded to
        :func:`repro.api.compact_tests`: the static difficulty map
        breaks Phase-1/Phase-3 ordering ties toward hard faults.  Off
        (the default) keeps the run byte-identical.
    hooks:
        Optional :class:`repro.experiments.supervision.WorkerHooks`:
        heartbeat updates, phase-boundary salvage flushes, and -- on a
        retry -- salvaged state to resume each arm from (a completed
        arm is reused outright; a mid-pipeline arm resumes past its
        completed phases).
    """
    started = time.time()
    netlist = profile.build()
    wb = api.Workbench.for_netlist(netlist, engine=engine, width=width,
                                   lint=True)
    comb = comb_set_mod.generate(wb.circuit, wb.faults, seed=seed,
                                 x_fill=x_fill)
    if hooks is not None:
        hooks.bind_counters(wb.counters, len(wb.faults))
        hooks.job_meta({
            "n_ffs": netlist.num_ffs,
            "n_gates": netlist.num_gates,
            "n_faults": len(wb.faults),
            "n_detectable": len(comb.detectable),
            "comb_tests": len(comb.tests),
            "n_untestable": wb.n_untestable,
        })

    arm_results: Dict[str, ArmResult] = {}
    for source in arms:
        t0_started = time.time()
        if hooks is not None:
            salvaged = hooks.completed_arm(source)
            if salvaged is not None:
                arm_results[source] = salvaged
                continue
        if source == "seqgen":
            length = profile.seq_budget
        elif source == "random":
            length = profile.t0_length
        else:
            raise ValueError(f"unknown arm {source!r}")
        observer = resume = None
        if hooks is not None:
            observer = hooks.arm_observer(source)
            resume = hooks.arm_resume(source)
        result = api.compact_tests(
            netlist, seed=seed, t0_source=source, t0_length=length,
            comb_tests=comb.tests, workbench=wb,
            candidate_scan=candidate_scan,
            x_fill=x_fill, power_budget=power_budget,
            observer=observer, resume=resume,
            trial_batch=trial_batch, adi=adi,
            adi_scores=comb.adi if adi else None,
            scoap=scoap)
        arm_result = ArmResult(
            t0_source=source, t0_length=length, result=result,
            seconds=time.time() - t0_started)
        arm_results[source] = arm_result
        if hooks is not None:
            hooks.arm_completed(source, arm_result)

    baseline4 = None
    dynamic = None
    if with_baselines:
        baseline4 = api.baseline_static(netlist, seed=seed,
                                        comb_tests=comb.tests,
                                        workbench=wb,
                                        power_budget=power_budget)
        dynamic = api.baseline_dynamic(netlist, seed=seed,
                                       comb_tests=comb.tests,
                                       workbench=wb)

    power_engine = ActivityEngine(wb.circuit, wb.counters)
    power = PowerReport(x_fill=x_fill, budget=power_budget)
    for source, arm in arm_results.items():
        final = arm.result.compacted_set or arm.result.test_set
        power.sets[source] = power_engine.set_power(final).summary()
    if baseline4 is not None:
        power.sets["baseline4"] = power_engine.set_power(
            baseline4.test_set).summary()

    transition: Dict[str, float] = {}
    delay_report: Optional[DelayReport] = None
    if delay:
        tsim = TransitionSim(wb.circuit, counters=wb.counters)
        sets: Dict[str, ScanTestSet] = {}
        if baseline4 is not None:
            sets["baseline4"] = baseline4.test_set
        for source, arm in arm_results.items():
            sets[source] = arm.result.compacted_set or \
                arm.result.test_set
        delay_report = measure_delay(tsim, sets)
        for label, summary in delay_report.sets.items():
            transition[label] = summary.coverage

    return CircuitRun(
        profile=profile,
        n_ffs=netlist.num_ffs,
        n_gates=netlist.num_gates,
        n_faults=len(wb.faults),
        n_detectable=len(comb.detectable),
        comb_tests=len(comb.tests),
        arms=arm_results,
        baseline4=baseline4,
        dynamic=dynamic,
        transition=transition,
        seconds=time.time() - started,
        counters=wb.counters.as_dict(),
        diagnostics=[d.to_dict() for d in wb.diagnostics],
        power=power,
        delay=delay_report,
        knobs={
            "engine": engine,
            "width": width,
            "candidate_scan": candidate_scan,
            "x_fill": x_fill,
            "power_budget": power_budget,
            "trial_batch": trial_batch,
            "adi": adi,
            "scoap": scoap,
            "delay": delay,
        },
        n_untestable=wb.n_untestable,
    )


def run_circuit_by_name(
    name: str,
    seed: int = 1,
    arms: Sequence[str] = ("seqgen", "random"),
    with_baselines: bool = True,
    delay: bool = False,
    engine: str = "codegen",
    width="auto",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    trial_batch: int = 64,
    adi: bool = False,
    scoap: bool = False,
    hooks: Optional[Any] = None,
) -> CircuitRun:
    """:func:`run_circuit` on a suite circuit looked up by name.

    This is the entry point the resilient harness's worker subprocess
    uses: a name travels across the ``spawn`` boundary where a profile
    (whose builder is a closure) cannot.

    Raises
    ------
    KeyError
        If ``name`` is not a suite circuit.
    """
    from ..circuits.suite import profile as lookup
    return run_circuit(lookup(name), seed=seed, arms=arms,
                       with_baselines=with_baselines,
                       delay=delay,
                       engine=engine, width=width,
                       candidate_scan=candidate_scan,
                       x_fill=x_fill, power_budget=power_budget,
                       trial_batch=trial_batch, adi=adi, scoap=scoap,
                       hooks=hooks)


def resolve_profiles(
    profiles: Optional[Sequence[CircuitProfile]] = None,
    quick: bool = True,
) -> List[CircuitProfile]:
    """The explicit profile list, or the quick/full suite default."""
    if profiles is None:
        return suite(quick=quick)
    return list(profiles)


def run_suite(
    profiles: Optional[Sequence[CircuitProfile]] = None,
    quick: bool = True,
    seed: int = 1,
    arms: Sequence[str] = ("seqgen", "random"),
    with_baselines: bool = True,
    delay: bool = False,
    engine: str = "codegen",
    width="auto",
    candidate_scan: str = DEFAULT_CANDIDATE_SCAN,
    x_fill: str = "random",
    power_budget: Optional[float] = None,
    trial_batch: int = 64,
    adi: bool = False,
    scoap: bool = False,
    verbose: bool = False,
) -> List[CircuitRun]:
    """Run the whole suite serially, in process.

    This is the simple path: one crash or hang voids the whole run.
    Long campaigns should prefer
    :func:`repro.experiments.harness.run_suite_resilient`, which adds
    worker isolation, timeouts, retries and checkpoint-resume.

    See :func:`run_circuit` for the knobs.
    """
    profiles = resolve_profiles(profiles, quick=quick)
    runs = []
    for profile in profiles:
        run = run_circuit(profile, seed=seed, arms=arms,
                          with_baselines=with_baselines,
                          delay=delay,
                          engine=engine, width=width,
                          candidate_scan=candidate_scan,
                          x_fill=x_fill, power_budget=power_budget,
                          trial_batch=trial_batch, adi=adi,
                          scoap=scoap)
        if verbose:  # pragma: no cover - console feedback only
            print(f"  {profile.name}: {run.seconds:.1f}s")
        runs.append(run)
    return runs

"""Phase 3: complete fault coverage with single-vector scan tests.

Faults left undetected by ``tau_seq`` are covered by tests drawn from
the combinational test set ``C``: each ``c_j`` becomes the scan test
``tau_j = (c_js, (c_ji))``.  Selection follows the paper exactly:

* simulate every ``tau_j`` against ``F - F_seq`` to get ``F_j``;
* for each undetected fault ``f``, record ``n(f)`` (how many tests
  detect it) and ``last(f)`` (the index of the last test detecting it);
* repeatedly pick the fault with minimum ``n(f)``, add
  ``tau_last(f)``, and drop everything that test detects.

Faults with ``n(f) = 1`` force their unique test into the set, so they
are naturally selected first by the minimum rule.  Faults detected by
no ``tau_j`` are returned as ``uncovered`` (combinationally redundant
or aborted faults -- the paper's tables likewise stop at the
detectable set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..atpg.comb_set import CombTest
from ..sim.comb_sim import CombPatternSim
from ..sim.counters import SimCounters
from .scan_test import ScanTest, single_vector_test


@dataclass
class TopOffResult:
    """Phase-3 outcome.

    Attributes
    ----------
    tests:
        The added single-vector scan tests, in selection order.
    chosen_indices:
        Indices into ``C`` of the selected tests.
    covered:
        Previously-undetected faults now covered.
    uncovered:
        Faults no candidate test detects (left undetected).
    """

    tests: List[ScanTest]
    chosen_indices: List[int]
    covered: Set[int]
    uncovered: Set[int]


def top_off(
    comb_sim: CombPatternSim,
    comb_tests: Sequence[CombTest],
    undetected: Set[int],
    retire_to=None,
    power_key: Optional[Callable[[int], float]] = None,
    trial_batch: int = 64,
    adi: Optional[Dict[int, int]] = None,
    counters: Optional[SimCounters] = None,
    scoap: Optional[Dict[int, int]] = None,
) -> TopOffResult:
    """Select single-vector tests covering ``undetected`` faults.

    Phase 3 is inherently a dropped-fault consumer: the caller passes
    only the faults the committed tests leave uncovered (the
    scoreboard's ``active`` set), so every candidate simulation here
    already runs on the smallest possible fault list.  With
    ``retire_to`` set, the newly covered faults are retired into that
    :class:`~repro.sim.scoreboard.FaultScoreboard` on return.

    ``power_key`` (index of a candidate test ``j`` -> its power cost,
    e.g. the peak shift WTM of ``tau_j``) inserts power as a tie-break
    after the paper's ``min n(f)`` rule: among equally-hard faults,
    the one whose ``last(f)`` test is cheapest wins, so the low-power
    test enters the set first and may cover its rivals' faults.
    ``None`` (the default) keeps the paper's selection byte-identical.

    ``trial_batch`` packs candidate tests into PPSFP pattern blocks
    (up to ``min(trial_batch, comb_sim.block)`` patterns per good+
    faulty pass) instead of simulating them one pattern at a time.
    Per-pattern detection is independent, so ``detects``/``n(f)``/
    ``last(f)`` -- and hence the selection -- are byte-identical for
    every value; ``1`` recovers the scalar loop.

    ``adi`` (fault index -> Accidental Detection Index, see
    :meth:`~repro.sim.scoreboard.FaultScoreboard.record_adi`) inserts
    a tie-break *between* ``min n(f)`` and the power key: among
    equally-covered faults the least-accidentally-detected (most
    random-resistant) one is targeted first, on the ADI rationale that
    such faults have the fewest alternative detections and should
    claim their test before easier rivals.  ``None`` keeps the
    paper's rule untouched.

    ``scoap`` (fault index -> SCOAP difficulty, see
    :meth:`~repro.analysis.scoap.ScoapMeasures.difficulty`) inserts
    the *static* hardness tie-break directly after ``min n(f)`` and
    ahead of ADI: among equally-covered faults the statically-hardest
    is targeted first.  ``None`` keeps the paper's rule untouched.
    """
    remaining = set(undetected)
    if not remaining:
        return TopOffResult([], [], set(), set())

    detects: List[Set[int]] = []
    n_of: Dict[int, int] = {}
    last_of: Dict[int, int] = {}
    order = sorted(remaining)
    step = max(1, min(comb_sim.block, trial_batch))
    for base in range(0, len(comb_tests), step):
        block = comb_tests[base:base + step]
        if len(block) > 1:
            masks = comb_sim.detect_block(
                [t.as_pattern() for t in block], order)
            block_hits: List[Set[int]] = [set() for _ in block]
            for fid, pmask in masks.items():
                while pmask:
                    low = pmask & -pmask
                    block_hits[low.bit_length() - 1].add(fid)
                    pmask ^= low
            if counters is not None:
                counters.trial_passes += 1
                counters.trial_lanes += len(block)
        else:
            block_hits = [comb_sim.detect_single(t.as_pattern(), order)
                          for t in block]
        for off, hits in enumerate(block_hits):
            detects.append(hits)
            for fid in hits:
                n_of[fid] = n_of.get(fid, 0) + 1
                last_of[fid] = base + off

    uncovered = remaining - set(n_of)
    remaining -= uncovered
    if adi is not None and remaining and counters is not None:
        counters.adi_orderings += 1
    if scoap is not None and remaining and counters is not None:
        counters.scoap_orderings += 1
    chosen: List[int] = []
    tests: List[ScanTest] = []
    covered: Set[int] = set()
    adi_of: Callable[[int], int] = (lambda f: 0) if adi is None else \
        (lambda f: adi.get(f, 0))  # type: ignore[union-attr]
    # Negated so min() prefers the statically-hardest fault; all-zero
    # without a map, keeping scoap=None byte-identical.
    scoap_of: Callable[[int], int] = (lambda f: 0) if scoap is None \
        else (lambda f: -scoap.get(f, 0))  # type: ignore[union-attr]
    while remaining:
        # The fault hardest to cover (fewest detecting tests) first;
        # ties broken deterministically by fault index (with optional
        # SCOAP, ADI and power tie-breaks in between).
        if power_key is None:
            fault = min(remaining,
                        key=lambda f: (n_of[f], scoap_of(f), adi_of(f),
                                       f))
        else:
            fault = min(remaining,
                        key=lambda f: (n_of[f], scoap_of(f), adi_of(f),
                                       power_key(last_of[f]), f))
        j = last_of[fault]
        chosen.append(j)
        test = comb_tests[j]
        tests.append(single_vector_test(test.state, test.pi))
        newly = detects[j] & remaining
        covered |= newly
        remaining -= newly
    if retire_to is not None:
        retire_to.retire(covered)
    return TopOffResult(tests, chosen, covered, uncovered)

"""Determinism lint: an AST walker over result-shaping source paths.

Everything this repository reports -- detection sets, test vectors,
clock cycles, the paper tables -- must be a pure function of
``(circuit, seed, knobs)``.  Two source-level habits silently break
that contract:

* **ambient randomness** -- an unseeded ``random.Random()`` draws from
  OS entropy, and module-level ``random.*`` calls share one global
  stream that any import can perturb;
* **wall-clock reads** -- ``time.time()`` / ``datetime.now()`` fold
  the run's start time into whatever consumes them.

This module flags both patterns with a small, dependency-free AST
visitor so CI can enforce the contract on the *result-shaping* paths
(``sim``, ``core``, ``atpg``, ``analysis``, ``circuits``, ``power``).
Timing instrumentation is exempt by design: ``time.perf_counter`` and
``time.monotonic`` are allowed (they measure durations, not dates),
and the ``experiments`` harness -- whose wall-clock reads feed
reported ``seconds`` fields and scheduling, never results -- is not in
the default scope.

A finding on a deliberately non-deterministic line can be waived with
a ``# det: allow`` comment on that line (use sparingly; the waiver is
visible in review).

Run it as a module::

    python -m repro.analysis.determinism [paths ...]

with exit code 1 when any finding survives, 0 when clean.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Set

#: Rule identifiers (mirroring the ``bench.*`` / ``struct.*`` style of
#: :mod:`repro.analysis.rules`).
RULE_UNSEEDED = "determinism.unseeded-random"
RULE_MODULE_RANDOM = "determinism.module-random"
RULE_WALL_CLOCK = "determinism.wall-clock"

#: Line-comment marker that waives a finding on its line.
ALLOW_MARKER = "det: allow"

#: ``time`` attributes that read the wall clock (dates, not durations).
_TIME_WALL = {"time", "time_ns", "localtime", "gmtime", "ctime",
              "asctime", "strftime"}
#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_WALL = {"now", "utcnow", "today"}

#: The default lint scope, relative to the ``repro`` package root:
#: every path whose output lands in results rather than telemetry.
RESULT_SHAPING = ("sim", "core", "atpg", "analysis", "circuits",
                  "power")


@dataclass(frozen=True)
class DeterminismFinding:
    """One flagged call site."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class _Visitor(ast.NodeVisitor):
    """Collect findings; alias-aware for the three offending modules."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[DeterminismFinding] = []
        #: Local names bound to the ``random`` / ``time`` / ``datetime``
        #: modules (``import random as rnd`` -> ``rnd``).
        self.random_names: Set[str] = set()
        self.time_names: Set[str] = set()
        self.datetime_mod_names: Set[str] = set()
        #: Names bound to the ``datetime.datetime``/``date`` classes
        #: (``from datetime import datetime``).
        self.datetime_cls_names: Set[str] = set()
        #: Names that are direct from-imports of offending callables
        #: (``from time import time`` -> calling ``time()`` is a read).
        self.from_wall: Set[str] = set()
        self.from_random: Set[str] = set()

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_names.add(bound)
            elif alias.name == "time":
                self.time_names.add(bound)
            elif alias.name == "datetime":
                self.datetime_mod_names.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                # ``from random import Random`` is fine (seeding is
                # checked at the call); anything else is the shared
                # global stream.
                if alias.name != "Random":
                    self.from_random.add(bound)
            elif node.module == "time" and alias.name in _TIME_WALL:
                self.from_wall.add(bound)
            elif node.module == "datetime":
                if alias.name in ("datetime", "date"):
                    self.datetime_cls_names.add(bound)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(DeterminismFinding(
            path=self.path, line=getattr(node, "lineno", 0),
            rule=rule, message=message))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self.random_names:
                if attr == "Random":
                    if not node.args and not node.keywords:
                        self._flag(node, RULE_UNSEEDED,
                                   "random.Random() without a seed "
                                   "draws from OS entropy")
                elif attr != "SystemRandom":
                    self._flag(node, RULE_MODULE_RANDOM,
                               f"module-level random.{attr}() uses the "
                               f"shared global stream; pass a seeded "
                               f"random.Random instance instead")
            elif base in self.time_names and attr in _TIME_WALL:
                self._flag(node, RULE_WALL_CLOCK,
                           f"time.{attr}() reads the wall clock; use "
                           f"time.perf_counter() for durations or "
                           f"take timestamps outside result paths")
            elif (base in self.datetime_cls_names
                  and attr in _DATETIME_WALL):
                self._flag(node, RULE_WALL_CLOCK,
                           f"datetime {attr}() reads the wall clock")
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Attribute) and \
                isinstance(func.value.value, ast.Name):
            # datetime.datetime.now() / datetime.date.today()
            root = func.value.value.id
            if (root in self.datetime_mod_names
                    and func.value.attr in ("datetime", "date")
                    and func.attr in _DATETIME_WALL):
                self._flag(node, RULE_WALL_CLOCK,
                           f"datetime.{func.value.attr}.{func.attr}() "
                           f"reads the wall clock")
        elif isinstance(func, ast.Name):
            if func.id in self.from_wall:
                self._flag(node, RULE_WALL_CLOCK,
                           f"{func.id}() (from-imported) reads the "
                           f"wall clock")
            elif func.id in self.from_random:
                self._flag(node, RULE_MODULE_RANDOM,
                           f"{func.id}() (from-imported) uses the "
                           f"shared global random stream")
        self.generic_visit(node)


def lint_source(text: str, path: str = "<string>"
                ) -> List[DeterminismFinding]:
    """Findings for one source text (``# det: allow`` lines waived)."""
    tree = ast.parse(text, filename=path)
    visitor = _Visitor(path)
    visitor.visit(tree)
    lines = text.splitlines()
    kept = []
    for finding in visitor.findings:
        source_line = lines[finding.line - 1] \
            if 0 < finding.line <= len(lines) else ""
        if ALLOW_MARKER in source_line:
            continue
        kept.append(finding)
    return kept


def lint_file(path: Path) -> List[DeterminismFinding]:
    """Findings for one ``.py`` file."""
    return lint_source(path.read_text(), str(path))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files and directories into a sorted ``.py`` file list."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    return out


def lint_paths(paths: Sequence[Path]) -> List[DeterminismFinding]:
    """Findings across files and directory trees."""
    findings: List[DeterminismFinding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file))
    return findings


def default_paths() -> List[Path]:
    """The result-shaping subpackages of the installed ``repro``."""
    root = Path(__file__).resolve().parent.parent
    return [root / name for name in RESULT_SHAPING]


def main(argv: Sequence[str] = ()) -> int:
    targets = [Path(a) for a in argv] or default_paths()
    missing = [t for t in targets if not t.exists()]
    if missing:
        for t in missing:
            print(f"error: no such path {t}", file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    for finding in findings:
        print(finding.render())
    n_files = len(list(iter_python_files(targets)))
    if findings:
        print(f"{len(findings)} determinism finding(s) in {n_files} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"{n_files} file(s) determinism-clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main(sys.argv[1:]))

"""In-worker supervision: heartbeats, phase hooks, scoped chaos.

The resilient harness used to treat a worker as a black box with a
wall-clock fuse: it either returned, or was killed at the timeout --
and a hung worker was indistinguishable from one grinding through a
hard circuit.  This module gives the worker a voice:

**Heartbeats.**  :class:`ProgressReporter` streams periodic
``("heartbeat", {...})`` messages over the existing spawn-boundary
pipe: current arm and phase, faults remaining, and a compact
:meth:`~repro.sim.counters.SimCounters.brief` snapshot.  The
supervisor's poll loop (:mod:`repro.experiments.harness`) kills a
worker whose heartbeat goes quiet for ``--stall-timeout`` seconds --
*stall* detection, independent of the wall clock -- and surfaces the
last-seen phase in the job summary.

**Phase hooks.**  :class:`WorkerHooks` is the worker-side bundle the
runner threads through the pipeline: it adapts the
:class:`~repro.core.proposed.PhaseObserver` protocol into heartbeat
updates and :class:`~repro.experiments.salvage.SalvageWriter` flushes,
and hands back salvaged resume state on retries.

**Phase-scoped chaos.**  Fault-injection directives gain an ``@phase``
suffix (``crash@phase3``, ``stall@phase2``) enacted *inside the
pipeline* at the moment the named phase begins -- after the previous
phase's salvage flushed -- plus ``corrupt-salvage``, which damages the
freshly-written salvage before dying, so the retry must prove it
quarantines rot instead of resuming from it.  Directives come from
``HarnessConfig.chaos`` or the ``REPRO_CHAOS`` environment variable
(``[circuit:]directive[,...]``, enacted on first attempts only).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.proposed import PhaseObserver
from ..sim.counters import SimCounters
from .salvage import SalvageWriter

#: Directive kinds that take effect before the pipeline starts (the
#: pre-existing chaos surface).
IMMEDIATE_KINDS = ("crash", "exit", "hang", "corrupt-checkpoint")

#: Directive kinds that may carry an ``@phaseN`` scope.
PHASE_KINDS = ("crash", "stall")

#: All valid directive kinds.
CHAOS_KINDS = IMMEDIATE_KINDS + ("stall", "corrupt-salvage")

_PHASES = ("phase1", "phase2", "phase3", "phase4")


class ChaosError(RuntimeError):
    """Raised by an enacted chaos directive (a deliberate crash)."""


@dataclass(frozen=True)
class ChaosDirective:
    """A parsed fault-injection directive.

    ``phase`` is ``None`` for unscoped directives (enacted before the
    pipeline starts) or ``"phase1"`` .. ``"phase4"`` for directives
    enacted when that phase begins.
    """

    kind: str
    phase: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.kind}@{self.phase}" if self.phase else self.kind


def parse_chaos(text: str) -> ChaosDirective:
    """Parse ``"crash"``, ``"crash@phase3"``, ``"stall@phase2"``, ...

    Raises
    ------
    ValueError
        On an unknown kind, an unknown phase, a phase scope on a kind
        that does not accept one, or a bare ``stall`` (stalling is
        meaningful only at a phase boundary).
    """
    kind, sep, phase = text.partition("@")
    if kind not in CHAOS_KINDS:
        raise ValueError(f"unknown chaos directive {kind!r}; "
                         f"use one of {CHAOS_KINDS}")
    if not sep:
        if kind == "stall":
            raise ValueError("stall requires a phase scope, "
                             "e.g. 'stall@phase2'")
        return ChaosDirective(kind)
    if kind not in PHASE_KINDS:
        raise ValueError(f"directive {kind!r} does not accept a "
                         f"phase scope")
    if phase not in _PHASES:
        raise ValueError(f"unknown phase {phase!r}; "
                         f"use one of {_PHASES}")
    return ChaosDirective(kind, phase)


def chaos_from_env(text: str) -> Callable[[Any, int], Optional[str]]:
    """Build a ``HarnessConfig.chaos`` hook from ``REPRO_CHAOS``.

    ``text`` is a comma-separated list of ``[circuit:]directive``
    entries, e.g. ``"s27:crash@phase3,s298:stall@phase2"`` or just
    ``"crash"`` (applies to every circuit).  Directives fire on first
    attempts only, so every injected failure is retried -- the knob
    exists to *rehearse* recovery, not to make campaigns fail.

    Raises
    ------
    ValueError
        On any malformed entry (fail loud at startup, not mid-run).
    """
    rules = []  # (circuit or None, directive text)
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        circuit, sep, directive = entry.rpartition(":")
        directive_text = directive if sep else entry
        parse_chaos(directive_text)  # validate eagerly
        rules.append((circuit if sep else None, directive_text))

    def chaos(spec: Any, attempt: int) -> Optional[str]:
        if attempt != 1:
            return None
        for circuit, directive_text in rules:
            if circuit is None or circuit == spec.circuit:
                return directive_text
        return None

    return chaos


def freeze() -> None:  # pragma: no cover - killed externally
    """Stall forever (until the supervisor kills the process).

    This replaces the old ``_HANG_SECONDS = 3600`` bounded sleep: a
    stalled worker's lifetime is the supervisor's business (the stall
    timeout), not a constant baked into the worker.
    """
    while True:
        time.sleep(3600.0)


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------

class ProgressReporter:
    """Streams heartbeat messages over the worker pipe.

    A daemon thread sends the current status every ``interval``
    seconds; :meth:`update` mutates the status and pushes one
    immediately (phase transitions should not wait out the interval).
    All sends are lock-guarded -- the pipe is shared with the worker's
    final ``("ok"| "error", ...)`` message, and interleaved
    ``Connection.send`` calls from two threads would corrupt the
    stream, so callers must :meth:`stop` the reporter before sending
    anything else.  With ``conn=None`` (inline mode) the reporter
    only tracks status; nothing is sent.
    """

    def __init__(self, conn: Any, interval: float = 1.0) -> None:
        self.conn = conn
        self.interval = interval
        self.status: Dict[str, Any] = {"arm": None, "phase": None,
                                       "faults_remaining": None,
                                       "counters": {}, "seq": 0}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counters: Optional[SimCounters] = None
        self._n_faults: Optional[int] = None

    def bind_counters(self, counters: SimCounters,
                      n_faults: int) -> None:
        """Heartbeats snapshot these counters from then on."""
        self._counters = counters
        self._n_faults = n_faults

    def start(self) -> None:
        if self.conn is None:
            return
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the pump thread and release the pipe for final sends."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def update(self, **status: Any) -> None:
        """Merge ``status`` and send one heartbeat immediately."""
        self.status.update(status)
        self._send()

    def _send(self) -> None:
        with self._lock:
            if self._counters is not None:
                self.status["counters"] = self._counters.brief()
                if self._n_faults is not None:
                    dropped = self.status["counters"]["faults_dropped"]
                    self.status["faults_remaining"] = \
                        max(0, self._n_faults - dropped)
            self.status["seq"] += 1
            if self.conn is None:
                return
            try:
                self.conn.send(("heartbeat", dict(self.status)))
            except (BrokenPipeError, OSError):  # pragma: no cover
                self._stop.set()  # supervisor gone; nothing to do

    def _pump(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop.wait(self.interval):
            self._send()


# ----------------------------------------------------------------------
# Worker hooks (observer + salvage + chaos, per arm)
# ----------------------------------------------------------------------

class _ArmObserver(PhaseObserver):
    """Adapts phase callbacks for one arm of one job."""

    def __init__(self, hooks: "WorkerHooks", arm: str) -> None:
        self.hooks = hooks
        self.arm = arm

    def enter(self, phase: str) -> None:
        self.hooks.reporter.update(arm=self.arm, phase=phase)
        directive = self.hooks.chaos
        if directive is not None and directive.phase == phase:
            self.hooks.chaos = None  # enact once
            if directive.kind == "crash":
                raise ChaosError(f"chaos: {directive}")
            if directive.kind == "stall":
                if self.hooks.isolated:  # pragma: no cover - killed
                    self.hooks.reporter.stop()
                    freeze()
                # Inline mode cannot be killed from outside; a raise
                # exercises the same retry-with-salvage path.
                raise ChaosError(f"chaos: {directive} (inline)")

    def completed(self, phase: str, state: Dict[str, Any]) -> None:
        phase_no = int(phase[-1])
        if self.hooks.salvage is not None:
            self.hooks.salvage.save_arm_state(self.arm, phase_no, state)
        self.hooks.reporter.update(arm=self.arm,
                                   phase=f"{phase}-done")
        directive = self.hooks.chaos
        if directive is not None and directive.kind == "corrupt-salvage":
            # The salvage just flushed was deliberately damaged by the
            # writer; die now so the retry faces the rotten file.
            self.hooks.chaos = None
            raise ChaosError("chaos: corrupt-salvage")


class WorkerHooks:
    """Everything the runner threads through one job attempt.

    Combines the heartbeat reporter, the salvage writer (optional --
    no run dir means no salvage) and at most one phase-scoped chaos
    directive.  :meth:`arm_observer` / :meth:`arm_resume` /
    :meth:`completed_arm` are the runner-facing surface.
    """

    def __init__(self, reporter: ProgressReporter,
                 salvage: Optional[SalvageWriter] = None,
                 chaos: Optional[ChaosDirective] = None,
                 isolated: bool = True) -> None:
        self.reporter = reporter
        self.salvage = salvage
        self.chaos = chaos
        self.isolated = isolated

    def bind_counters(self, counters: SimCounters,
                      n_faults: int) -> None:
        self.reporter.bind_counters(counters, n_faults)

    def job_meta(self, meta: Dict[str, Any]) -> None:
        """Record job-level metadata into the salvage payload."""
        if self.salvage is not None:
            self.salvage.set_meta(meta)

    def arm_observer(self, arm: str) -> PhaseObserver:
        return _ArmObserver(self, arm)

    def arm_resume(self, arm: str) -> Optional[Dict[str, Any]]:
        """Salvaged mid-pipeline state for ``arm``, if any."""
        if self.salvage is None:
            return None
        return self.salvage.arm_resume_state(arm)

    def completed_arm(self, arm: str) -> Optional[Any]:
        """A fully-completed salvaged ``ArmResult``, if any."""
        if self.salvage is None:
            return None
        return self.salvage.completed_arm(arm)

    def arm_completed(self, arm: str, arm_result: Any) -> None:
        """An arm finished end to end; persist it as completed."""
        if self.salvage is not None:
            self.salvage.save_completed_arm(arm, arm_result)
        self.reporter.update(arm=arm, phase="done")

"""Emit engine benchmarks: ``BENCH_engine.json`` / ``BENCH_phase1.json``.

Default mode runs the paper's full proposed procedure
(:func:`repro.core.proposed.run`) twice on one synthesized circuit:

* **before** -- the pre-fusion engine configuration: 128 machines per
  word (many chunks per pass) and a *disabled* scoreboard, so no
  cross-phase fault dropping;
* **after** -- the wide-word configuration: ``width="auto"`` (every
  target fused into one word) with cross-phase dropping on;
* **numpy** -- the same fused configuration executed by the uint64
  array backend (``engine="numpy"``, C pass kernel when a compiler is
  present).  The arm is skipped -- recorded as ``null`` with a visible
  notice -- when numpy is not installed.

``--engine-matrix`` times one whole-fault-set ``detect`` pass per
engine (interp, codegen, numpy) on the same circuit, best of several
repeats, asserting identical detected sets, and emits
``BENCH_engine_matrix.json``.

``--phase1`` instead benchmarks the Phase-1 candidate scan: the scalar
per-candidate :meth:`~repro.sim.fault_sim.FaultSimulator.detect` loop
vs the lane-transposed
:meth:`~repro.sim.fault_sim.FaultSimulator.detect_candidates` pass
(micro-benchmark over ``select_scan_in``, best of several repeats),
plus one end-to-end ``run_proposed`` per mode.  The emitted
``BENCH_phase1.json`` asserts identical ``(chosen_index, f_si)``,
final test sets and clock cycles under both modes.

Both modes must produce byte-identical results -- the script asserts
it and records the check in the JSON.  The emitted file carries
circuit stats, per-arm wall clock and engine counters, and the
speedup ratio.

``--trials`` benchmarks the lane-batched trial engine: the full
proposed procedure under ``trial_batch=1`` (scalar per-trial loops)
vs the default ``trial_batch=64`` (Phase-3 candidate blocks, Phase-4
merge-trial prefetching) on the numpy engine when available.  The
emitted ``BENCH_trials.json`` records both arms' Phase-3+4 wall clock
and asserts byte-identical results; ``--gate RATIO`` fails when the
batched trial time exceeds ``RATIO`` x the scalar time (the committed
artifact shows >= 2x, i.e. ratio <= 0.5, on the full circuit).

``--adi`` compares the Accidental-Detection-Index-guided run
(``adi=True``, census from the random phase of combinational test
generation) against the flag-off default.  ``BENCH_adi.json`` records
both arms' detect passes and final clock cycles; the quality gate
(``--gate`` with any value) requires identical final fault coverage,
fewer total detect passes, and cycles no worse than the baseline.

``--collapse`` compares the static fault-space analyzer's collapsed
simulation against the plain uncollapsed flow: both arms run the full
proposed procedure on the *same* uncollapsed fault universe, but the
collapsed arm carries the structural-equivalence partition (one
representative simulated per class, detections re-inflated to every
member) and excludes the proven-untestable faults.  The emitted
``BENCH_collapse.json`` records the universe/class counts and both
arms' per-fault simulation work (``comb_passes``, ``machines``) and
asserts byte-identical results -- detection sets, test vectors and
clock cycles; ``--gate`` (any value) additionally requires the
collapsed arm to simulate strictly fewer per-fault passes and machine
bits.

``--delay`` benchmarks the at-speed workload: the profile circuit's
final test sets (one default proposed run plus the [4]-style
single-vector baseline) are graded by the transition-fault simulator
(:class:`repro.delay.transition.TransitionSim`) under both routes --
the scalar big-int loops and the wide-word packed route (uint64
arrays + the C pass kernel).  ``BENCH_delay.json`` records both arms'
wall clock, the full :class:`repro.delay.clocking.DelayReport`
(TDF coverage + test-clock cycle budget per set), and an
``identical_coverage`` flag; ``--gate RATIO`` fails when the packed
route is less than ``RATIO`` x faster than scalar (skipped with a
visible notice when numpy or the kernel is unavailable).  The CI job
runs ``--delay --gate 3.0`` on the full-size circuit: the quick
circuit's TDF workload is too small for the kernel to amortize its
per-pass setup, so the gate would measure overhead, not the route.

``--power`` sweeps every X-fill strategy (:data:`repro.sim.values.
FILL_STRATEGIES`) over the quick suite: one proposed-procedure run per
(circuit, strategy), measuring the final test set's peak/average shift
WTM and capture toggles with :class:`repro.power.activity.
ActivityEngine`.  The emitted ``BENCH_power.json`` records an
``identical_detection`` flag (the explicit ``random`` strategy must be
byte-identical -- detection sets, cycles and test vectors -- to a run
with default parameters) and, under ``--gate``, asserts per circuit
that ``adjacent`` fill's peak shift WTM never exceeds ``RATIO`` times
``random`` fill's.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py            # full (~3 min)
    PYTHONPATH=src python benchmarks/emit_bench.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/emit_bench.py --quick --gate 1.5
    PYTHONPATH=src python benchmarks/emit_bench.py --quick --gate-numpy 3.0
    PYTHONPATH=src python benchmarks/emit_bench.py --engine-matrix --quick
    PYTHONPATH=src python benchmarks/emit_bench.py --phase1   # lanes bench
    PYTHONPATH=src python benchmarks/emit_bench.py --phase1 --quick --gate 1.0
    PYTHONPATH=src python benchmarks/emit_bench.py --power --gate 1.0
    PYTHONPATH=src python benchmarks/emit_bench.py --delay --gate 3.0

``--gate RATIO`` turns the script into a perf gate: exit code 1 when
the after/lanes arm is slower than ``RATIO`` times the before/scalar
arm (the CI perf-smoke job runs ``--quick --gate 1.5`` and
``--phase1 --quick --gate 1.0``).  ``--gate-numpy RATIO`` additionally
requires the numpy arm to be at least ``RATIO`` times faster than the
fused big-int arm; it is skipped with a visible notice when numpy or a
C compiler is unavailable.  In ``--power`` mode the gate is a quality
gate instead: adjacent peak shift WTM vs random, per circuit (the CI
job runs ``--power --gate 1.0``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.atpg import comb_set as comb_set_mod
from repro.atpg import random_gen
from repro.circuits import synth
from repro.core.combine import static_compact
from repro.core.phase1 import detect_no_scan, select_scan_in
from repro.core.proposed import run as run_proposed
from repro.core.scan_test import ScanTestSet, single_vector_test
from repro.delay import TransitionSim, measure_delay
from repro.experiments.reporting import atomic_write_text
from repro.power.activity import ActivityEngine
from repro.sim.comb_sim import CombPatternSim
from repro.sim.counters import SimCounters
from repro.sim import npsim
from repro.sim.fault_sim import (DEFAULT_WIDTH, FaultSimulator,
                                 benchmark_packing)
from repro.sim.faults import FaultSet
from repro.sim.logicsim import CompiledCircuit
from repro.sim.scoreboard import FaultScoreboard
from repro.sim import values as V


def _numpy_version() -> Optional[str]:
    """The installed numpy version, or ``None`` when absent."""
    if not npsim.numpy_available():
        return None
    return npsim.require_numpy().__version__

#: The full-size benchmark circuit: >= 1000 collapsed faults.
FULL_PROFILE = dict(name="bench1k", n_pi=12, n_po=10, n_ff=28,
                    n_gates=330, seed=7, t0_length=100)
#: CI-sized circuit: the same pipeline in a few seconds.
QUICK_PROFILE = dict(name="benchq", n_pi=8, n_po=6, n_ff=12,
                     n_gates=90, seed=7, t0_length=40)


def _run_arm(netlist, comb_tests, t0, width, dropping: bool,
             engine: str = "codegen") -> Dict[str, Any]:
    """One full proposed-procedure pass under a packing/drop policy."""
    circuit = CompiledCircuit(netlist, engine=engine)
    faults = FaultSet.collapsed(netlist)
    counters = SimCounters()
    sim = FaultSimulator(circuit, faults, width=width, counters=counters)
    comb_sim = CombPatternSim(circuit, faults)
    scoreboard = FaultScoreboard(len(faults), counters=counters,
                                 enabled=dropping)
    started = time.perf_counter()
    result = run_proposed(sim, comb_sim, t0, comb_tests,
                          scoreboard=scoreboard)
    seconds = time.perf_counter() - started
    final = result.compacted_set or result.test_set
    return {
        "engine": engine,
        "width": width,
        "dropping": dropping,
        "seconds": round(seconds, 3),
        "counters": counters.as_dict(),
        "result": {
            "seq_detected": len(result.seq_detected),
            "final_detected": len(result.final_detected),
            "tests": len(final),
            "cycles": final.clock_cycles(),
            "tau_seq_length": result.tau_seq.length,
        },
        "_sets": (result.seq_detected, result.final_detected,
                  tuple(final.tests)),
    }


def build_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    netlist = synth.generate(profile["name"], profile["n_pi"],
                             profile["n_po"], profile["n_ff"],
                             profile["n_gates"], seed=profile["seed"])
    circuit = CompiledCircuit(netlist)
    faults = FaultSet.collapsed(netlist)
    comb = comb_set_mod.generate(circuit, faults, seed=seed)
    t0 = random_gen.random_sequence(circuit, profile["t0_length"],
                                    seed=seed)

    print(f"circuit {profile['name']}: {netlist.num_gates} gates, "
          f"{netlist.num_ffs} FFs, {len(faults)} collapsed faults, "
          f"{len(comb.tests)} comb tests, |T0|={len(t0)}")

    print("before: chunked width=128, no dropping ...", flush=True)
    before = _run_arm(netlist, comb.tests, t0, DEFAULT_WIDTH,
                      dropping=False)
    print(f"  {before['seconds']}s")
    print('after: width="auto" fused, cross-phase dropping ...',
          flush=True)
    after = _run_arm(netlist, comb.tests, t0, "auto", dropping=True)
    print(f"  {after['seconds']}s")

    numpy_arm: Optional[Dict[str, Any]] = None
    if npsim.numpy_available():
        print('numpy: width="auto" fused, uint64-array backend ...',
              flush=True)
        numpy_arm = _run_arm(netlist, comb.tests, t0, "auto",
                             dropping=True, engine="numpy")
        print(f"  {numpy_arm['seconds']}s")
    else:
        print("numpy arm SKIPPED: numpy is not installed "
              "(pip install repro[fast])")

    after_sets = after.pop("_sets")
    identical = before.pop("_sets") == after_sets
    if numpy_arm is not None:
        identical = identical and numpy_arm.pop("_sets") == after_sets
    if not identical:
        print("ERROR: the arms disagree on results", file=sys.stderr)

    winner, fused_s, chunked_s = benchmark_packing(circuit, faults,
                                                   seed=seed)
    speedup = before["seconds"] / max(after["seconds"], 1e-9)
    numpy_speedup = None
    if numpy_arm is not None:
        numpy_speedup = round(
            after["seconds"] / max(numpy_arm["seconds"], 1e-9), 2)
    return {
        "bench": "engine: fused wide-word + fault dropping vs chunked",
        "circuit": {
            "name": profile["name"],
            "pi": netlist.num_inputs,
            "po": netlist.num_outputs,
            "ff": netlist.num_ffs,
            "gates": netlist.num_gates,
            "faults": len(faults),
            "comb_tests": len(comb.tests),
            "t0_length": len(t0),
        },
        "config": {
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": _numpy_version(),
            "np_kernel": (npsim.kernel_unavailable_reason() is None
                          if npsim.numpy_available() else False),
        },
        "before": before,
        "after": after,
        "numpy": numpy_arm,
        "speedup": round(speedup, 2),
        "numpy_speedup": numpy_speedup,
        "identical_results": identical,
        "packing_probe": {
            "winner": winner,
            "fused_s": round(fused_s, 4),
            "chunked_s": round(chunked_s, 4),
        },
    }


def build_engine_matrix_payload(quick: bool, seed: int = 1,
                                repeats: int = 3) -> Dict[str, Any]:
    """The ``--engine-matrix`` payload: one ``detect`` pass per engine.

    Times a whole-fault-set, no-early-exit ``detect`` pass over a
    random binary sequence under each evaluation engine (interp,
    codegen, numpy), best of ``repeats``, on the same circuit and
    stimuli.  The numpy row is ``null`` when numpy is missing.  All
    engines must return the identical detected set.
    """
    import random as _random

    profile = QUICK_PROFILE if quick else FULL_PROFILE
    netlist = synth.generate(profile["name"], profile["n_pi"],
                             profile["n_po"], profile["n_ff"],
                             profile["n_gates"], seed=profile["seed"])
    faults = FaultSet.collapsed(netlist)
    rng = _random.Random(seed)
    # Long enough to amortize the per-call plan build; the per-frame
    # engine cost is what the matrix is meant to compare.
    frames = 128
    vectors = [V.random_binary_vector(netlist.num_inputs, rng)
               for _ in range(frames)]
    init = V.random_binary_vector(netlist.num_ffs, rng)

    print(f"circuit {profile['name']}: {netlist.num_gates} gates, "
          f"{netlist.num_ffs} FFs, {len(faults)} collapsed faults, "
          f"{frames} frames")

    engines = {}
    detected_sets = {}
    for engine in ("interp", "codegen", "numpy"):
        if engine == "numpy" and not npsim.numpy_available():
            print("numpy: SKIPPED (numpy is not installed)")
            engines[engine] = None
            continue
        circuit = CompiledCircuit(netlist, engine=engine)
        sim = FaultSimulator(circuit, faults, width="auto")
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            detected = sim.detect(vectors, init, early_exit=False)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        engines[engine] = {"seconds": round(best, 4),
                           "detected": len(detected)}
        detected_sets[engine] = frozenset(detected)
        print(f"{engine}: best {engines[engine]['seconds']}s "
              f"({len(detected)} detected)")

    identical = len(set(detected_sets.values())) == 1
    if not identical:
        print("ERROR: the engines disagree on the detected set",
              file=sys.stderr)
    codegen_s = engines["codegen"]["seconds"]

    def _ratio(engine: str) -> Optional[float]:
        row = engines[engine]
        if row is None:
            return None
        return round(codegen_s / max(row["seconds"], 1e-9), 2)

    return {
        "bench": "engine matrix: one detect pass per evaluation engine",
        "circuit": {
            "name": profile["name"],
            "pi": netlist.num_inputs,
            "po": netlist.num_outputs,
            "ff": netlist.num_ffs,
            "gates": netlist.num_gates,
            "faults": len(faults),
            "frames": frames,
        },
        "config": {
            "quick": quick,
            "seed": seed,
            "repeats": repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": _numpy_version(),
            "np_kernel": (npsim.kernel_unavailable_reason() is None
                          if npsim.numpy_available() else False),
        },
        "engines": engines,
        "speedup_vs_codegen": {e: _ratio(e)
                               for e in ("interp", "codegen", "numpy")},
        "identical_results": identical,
    }


def _run_candidate_arm(netlist, comb_tests, t0, mode: str
                       ) -> Dict[str, Any]:
    """One full proposed-procedure pass under a candidate-scan mode."""
    circuit = CompiledCircuit(netlist, engine="codegen")
    faults = FaultSet.collapsed(netlist)
    counters = SimCounters()
    sim = FaultSimulator(circuit, faults, width="auto",
                         counters=counters)
    comb_sim = CombPatternSim(circuit, faults)
    started = time.perf_counter()
    result = run_proposed(sim, comb_sim, t0, comb_tests,
                          candidate_scan=mode)
    seconds = time.perf_counter() - started
    final = result.compacted_set or result.test_set
    return {
        "candidate_scan": mode,
        "seconds": round(seconds, 3),
        "phase1_seconds": round(counters.phase1_s, 3),
        "counters": counters.as_dict(),
        "result": {
            "seq_detected": len(result.seq_detected),
            "final_detected": len(result.final_detected),
            "tests": len(final),
            "cycles": final.clock_cycles(),
            "tau_seq_length": result.tau_seq.length,
        },
        "_sets": (result.seq_detected, result.final_detected,
                  tuple(final.tests), final.clock_cycles()),
    }


def _time_select_scan_in(sim, t0, comb_tests, f0, selected, mode: str,
                         repeats: int) -> Dict[str, Any]:
    """Best-of-``repeats`` timing of one Step-2 selection pass."""
    best = None
    outcome = None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = select_scan_in(sim, t0, comb_tests, f0, selected,
                                 mode=mode)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return {"mode": mode, "seconds": round(best, 4),
            "chosen_index": outcome[0], "f_si": outcome[1]}


def build_phase1_payload(quick: bool, seed: int = 1,
                         repeats: int = 3) -> Dict[str, Any]:
    """The ``--phase1`` payload: scalar vs lanes candidate scan."""
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    netlist = synth.generate(profile["name"], profile["n_pi"],
                             profile["n_po"], profile["n_ff"],
                             profile["n_gates"], seed=profile["seed"])
    circuit = CompiledCircuit(netlist)
    faults = FaultSet.collapsed(netlist)
    comb = comb_set_mod.generate(circuit, faults, seed=seed)
    t0 = random_gen.random_sequence(circuit, profile["t0_length"],
                                    seed=seed)

    print(f"circuit {profile['name']}: {netlist.num_gates} gates, "
          f"{netlist.num_ffs} FFs, {len(faults)} collapsed faults, "
          f"{len(comb.tests)} candidate states, |T0|={len(t0)}")

    # Micro-benchmark: one Step-2 selection pass, best of `repeats`.
    sim = FaultSimulator(circuit, faults, width="auto")
    f0 = detect_no_scan(sim, t0, range(len(faults)))
    selected = [False] * len(comb.tests)
    print(f"select_scan_in scalar x{repeats} ...", flush=True)
    scalar = _time_select_scan_in(sim, t0, comb.tests, f0, selected,
                                  "scalar", repeats)
    print(f"  best {scalar['seconds']}s")
    print(f"select_scan_in lanes x{repeats} ...", flush=True)
    lanes = _time_select_scan_in(sim, t0, comb.tests, f0, selected,
                                 "lanes", repeats)
    print(f"  best {lanes['seconds']}s")
    identical_selection = (
        scalar.pop("chosen_index"), scalar.pop("f_si")) == (
        lanes.pop("chosen_index"), lanes.pop("f_si"))
    if not identical_selection:
        print("ERROR: scalar and lanes disagree on (chosen_index, f_si)",
              file=sys.stderr)

    # End to end: the full proposed procedure under each mode.
    print("end-to-end run_proposed, scalar ...", flush=True)
    e2e_scalar = _run_candidate_arm(netlist, comb.tests, t0, "scalar")
    print(f"  {e2e_scalar['seconds']}s "
          f"(phase1 {e2e_scalar['phase1_seconds']}s)")
    print("end-to-end run_proposed, lanes ...", flush=True)
    e2e_lanes = _run_candidate_arm(netlist, comb.tests, t0, "lanes")
    print(f"  {e2e_lanes['seconds']}s "
          f"(phase1 {e2e_lanes['phase1_seconds']}s)")
    identical_e2e = e2e_scalar.pop("_sets") == e2e_lanes.pop("_sets")
    if not identical_e2e:
        print("ERROR: the two modes disagree on end-to-end results",
              file=sys.stderr)

    speedup = scalar["seconds"] / max(lanes["seconds"], 1e-9)
    phase1_speedup = e2e_scalar["phase1_seconds"] / \
        max(e2e_lanes["phase1_seconds"], 1e-9)
    return {
        "bench": "phase1: candidate-parallel lanes vs scalar scan-in "
                 "selection",
        "circuit": {
            "name": profile["name"],
            "pi": netlist.num_inputs,
            "po": netlist.num_outputs,
            "ff": netlist.num_ffs,
            "gates": netlist.num_gates,
            "faults": len(faults),
            "comb_tests": len(comb.tests),
            "t0_length": len(t0),
        },
        "config": {
            "quick": quick,
            "seed": seed,
            "repeats": repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "select_scan_in": {"scalar": scalar, "lanes": lanes,
                           "speedup": round(speedup, 2)},
        "end_to_end": {"scalar": e2e_scalar, "lanes": e2e_lanes,
                       "phase1_speedup": round(phase1_speedup, 2)},
        "speedup": round(speedup, 2),
        "identical_results": identical_selection and identical_e2e,
    }


def _run_trial_arm(netlist, comb_tests, t0, trial_batch: int,
                   engine: str, adi: bool = False,
                   adi_scores=None) -> Dict[str, Any]:
    """One full proposed-procedure pass under a trial-batch budget."""
    circuit = CompiledCircuit(netlist, engine=engine)
    faults = FaultSet.collapsed(netlist)
    counters = SimCounters()
    sim = FaultSimulator(circuit, faults, width="auto",
                         counters=counters)
    comb_sim = CombPatternSim(circuit, faults)
    started = time.perf_counter()
    result = run_proposed(sim, comb_sim, t0, comb_tests,
                          trial_batch=trial_batch,
                          adi=adi, adi_scores=adi_scores)
    seconds = time.perf_counter() - started
    final = result.compacted_set or result.test_set
    return {
        "engine": engine,
        "trial_batch": trial_batch,
        "adi": adi,
        "seconds": round(seconds, 3),
        "phase3_seconds": round(counters.phase3_s, 3),
        "phase4_seconds": round(counters.phase4_s, 3),
        "counters": counters.as_dict(),
        "result": {
            "seq_detected": len(result.seq_detected),
            "final_detected": len(result.final_detected),
            "tests": len(final),
            "cycles": final.clock_cycles(),
            "tau_seq_length": result.tau_seq.length,
        },
        "_sets": (result.seq_detected, result.final_detected,
                  tuple(final.tests), final.clock_cycles()),
    }


def _trials_circuit(quick: bool, seed: int):
    """The profile circuit plus its comb set and ``T0`` stimuli."""
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    netlist = synth.generate(profile["name"], profile["n_pi"],
                             profile["n_po"], profile["n_ff"],
                             profile["n_gates"], seed=profile["seed"])
    circuit = CompiledCircuit(netlist)
    faults = FaultSet.collapsed(netlist)
    comb = comb_set_mod.generate(circuit, faults, seed=seed)
    t0 = random_gen.random_sequence(circuit, profile["t0_length"],
                                    seed=seed)
    print(f"circuit {profile['name']}: {netlist.num_gates} gates, "
          f"{netlist.num_ffs} FFs, {len(faults)} collapsed faults, "
          f"{len(comb.tests)} comb tests, |T0|={len(t0)}")
    return profile, netlist, faults, comb, t0


def _circuit_block(profile, netlist, faults, comb, t0) -> Dict[str, Any]:
    return {
        "name": profile["name"],
        "pi": netlist.num_inputs,
        "po": netlist.num_outputs,
        "ff": netlist.num_ffs,
        "gates": netlist.num_gates,
        "faults": len(faults),
        "comb_tests": len(comb.tests),
        "t0_length": len(t0),
    }


def build_trials_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    """The ``--trials`` payload: scalar vs lane-batched trial engine.

    Runs the full proposed procedure twice on the profile circuit --
    ``trial_batch=1`` (the scalar per-trial loops) and the default
    ``trial_batch=64`` (Phase-3 candidate blocks + Phase-4 merge-trial
    prefetching) -- on the numpy engine when available (codegen
    otherwise), asserting byte-identical results and reporting the
    Phase-3+4 wall-clock ratio the CI gate checks.
    """
    profile, netlist, faults, comb, t0 = _trials_circuit(quick, seed)
    engine = "numpy" if npsim.numpy_available() else "codegen"

    print(f"scalar: trial_batch=1, engine={engine} ...", flush=True)
    scalar = _run_trial_arm(netlist, comb.tests, t0, 1, engine)
    print(f"  {scalar['seconds']}s (p3 {scalar['phase3_seconds']}s, "
          f"p4 {scalar['phase4_seconds']}s)")
    print(f"batched: trial_batch=64, engine={engine} ...", flush=True)
    batched = _run_trial_arm(netlist, comb.tests, t0, 64, engine)
    print(f"  {batched['seconds']}s (p3 {batched['phase3_seconds']}s, "
          f"p4 {batched['phase4_seconds']}s)")

    identical = scalar.pop("_sets") == batched.pop("_sets")
    if not identical:
        print("ERROR: scalar and batched trials disagree on results",
              file=sys.stderr)
    scalar_trials = scalar["phase3_seconds"] + scalar["phase4_seconds"]
    batched_trials = (batched["phase3_seconds"]
                      + batched["phase4_seconds"])
    speedup = scalar_trials / max(batched_trials, 1e-9)
    return {
        "bench": "trials: lane-batched Phase-3/4 trial simulation vs "
                 "scalar loops",
        "circuit": _circuit_block(profile, netlist, faults, comb, t0),
        "config": {
            "quick": quick,
            "seed": seed,
            "engine": engine,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": _numpy_version(),
            "np_kernel": (npsim.kernel_unavailable_reason() is None
                          if npsim.numpy_available() else False),
        },
        "scalar": scalar,
        "batched": batched,
        "trial_seconds": {"scalar": round(scalar_trials, 3),
                          "batched": round(batched_trials, 3)},
        "speedup": round(speedup, 2),
        "identical_results": identical,
    }


def _run_collapse_arm(netlist, comb_tests, t0,
                      collapse: bool) -> Dict[str, Any]:
    """One full proposed-procedure pass over the uncollapsed universe.

    ``collapse=False`` simulates every fault individually (the
    baseline); ``collapse=True`` simulates one representative per
    structural-equivalence class, re-inflates detections, and drops
    the statically-proven-untestable faults.  Both arms expose the
    same fault indexing, so the result fingerprints compare directly.
    """
    circuit = CompiledCircuit(netlist, engine="codegen")
    faults = FaultSet.uncollapsed(netlist, collapse=collapse)
    counters = SimCounters()
    sim = FaultSimulator(circuit, faults, width="auto",
                         counters=counters)
    comb_sim = CombPatternSim(circuit, faults, counters=counters)
    n_untestable = 0
    dropped_reps = 0
    if collapse:
        from repro.analysis.faultspace import analyze_faultspace
        report = analyze_faultspace(netlist)
        untestable = report.untestable_indices(faults)
        n_untestable = len(untestable)
        if untestable:
            dropped_reps = len(faults.untestable_reps(untestable))
            sim.set_untestable(sorted(untestable))
            comb_sim.set_untestable(sorted(untestable))
    started = time.perf_counter()
    result = run_proposed(sim, comb_sim, t0, comb_tests)
    seconds = time.perf_counter() - started
    final = result.compacted_set or result.test_set
    return {
        "collapse": collapse,
        "faults_simulated": (faults.n_classes - dropped_reps
                             if collapse else len(faults)),
        "n_classes": faults.n_classes,
        "n_untestable": n_untestable,
        "seconds": round(seconds, 3),
        "counters": counters.as_dict(),
        "result": {
            "seq_detected": len(result.seq_detected),
            "final_detected": len(result.final_detected),
            "tests": len(final),
            "cycles": final.clock_cycles(),
            "tau_seq_length": result.tau_seq.length,
        },
        "_sets": (frozenset(result.seq_detected),
                  frozenset(result.final_detected),
                  tuple(final.tests), final.clock_cycles()),
    }


def build_collapse_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    """The ``--collapse`` payload: collapsed vs uncollapsed simulation.

    Both arms run on the full uncollapsed stuck-at universe with the
    same stimuli; the analyzer-backed arm must reproduce the baseline
    byte-identically while doing strictly less per-fault work.
    """
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    netlist = synth.generate(profile["name"], profile["n_pi"],
                             profile["n_po"], profile["n_ff"],
                             profile["n_gates"], seed=profile["seed"])
    circuit = CompiledCircuit(netlist)
    universe = FaultSet.uncollapsed(netlist, collapse=False)
    comb = comb_set_mod.generate(circuit, universe, seed=seed)
    t0 = random_gen.random_sequence(circuit, profile["t0_length"],
                                    seed=seed)
    print(f"circuit {profile['name']}: {netlist.num_gates} gates, "
          f"{netlist.num_ffs} FFs, {len(universe)} uncollapsed faults, "
          f"{len(comb.tests)} comb tests, |T0|={len(t0)}")

    print("uncollapsed: every fault simulated individually ...",
          flush=True)
    plain = _run_collapse_arm(netlist, comb.tests, t0, collapse=False)
    print(f"  {plain['seconds']}s, "
          f"{plain['counters']['comb_passes']} comb passes")
    print("collapsed: representatives only + untestable dropped ...",
          flush=True)
    collapsed = _run_collapse_arm(netlist, comb.tests, t0,
                                  collapse=True)
    print(f"  {collapsed['seconds']}s, "
          f"{collapsed['counters']['comb_passes']} comb passes, "
          f"{collapsed['n_classes']} classes, "
          f"{collapsed['n_untestable']} untestable")

    identical = plain.pop("_sets") == collapsed.pop("_sets")
    if not identical:
        print("ERROR: collapsed simulation disagrees with the "
              "uncollapsed baseline", file=sys.stderr)
    return {
        "bench": "collapse: representative-only simulation + "
                 "untestability proofs vs the uncollapsed flow",
        "circuit": {
            "name": profile["name"],
            "pi": netlist.num_inputs,
            "po": netlist.num_outputs,
            "ff": netlist.num_ffs,
            "gates": netlist.num_gates,
            "faults": len(universe),
            "comb_tests": len(comb.tests),
            "t0_length": len(t0),
        },
        "config": {
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fault_space": {
            "n_universe": len(universe),
            "n_classes": collapsed["n_classes"],
            "collapse_ratio": round(
                collapsed["n_classes"] / max(len(universe), 1), 3),
            "n_untestable": collapsed["n_untestable"],
        },
        "uncollapsed": plain,
        "collapsed": collapsed,
        "comb_passes": {
            "uncollapsed": plain["counters"]["comb_passes"],
            "collapsed": collapsed["counters"]["comb_passes"],
        },
        "machines": {
            "uncollapsed": plain["counters"]["machines"],
            "collapsed": collapsed["counters"]["machines"],
        },
        "identical_results": identical,
    }


def build_adi_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    """The ``--adi`` payload: ADI-guided ordering vs the plain run.

    The baseline arm is the flag-off default; the ADI arm feeds the
    random-phase accidental-detection census into Phase-1/3 ordering
    and fused-word packing.  The quality gates: identical final fault
    coverage (hard requirement), fewer total detect passes, and final
    clock cycles no worse than the baseline.
    """
    profile, netlist, faults, comb, t0 = _trials_circuit(quick, seed)
    engine = "numpy" if npsim.numpy_available() else "codegen"

    print(f"baseline: adi=off, engine={engine} ...", flush=True)
    baseline = _run_trial_arm(netlist, comb.tests, t0, 64, engine)
    print(f"  {baseline['seconds']}s, "
          f"{baseline['counters']['detect_passes']} detect passes, "
          f"{baseline['result']['cycles']} cycles")
    print(f"adi: census-guided ordering, engine={engine} ...",
          flush=True)
    adi_arm = _run_trial_arm(netlist, comb.tests, t0, 64, engine,
                             adi=True, adi_scores=comb.adi)
    print(f"  {adi_arm['seconds']}s, "
          f"{adi_arm['counters']['detect_passes']} detect passes, "
          f"{adi_arm['result']['cycles']} cycles, "
          f"{adi_arm['counters']['adi_orderings']} orderings")

    base_sets = baseline.pop("_sets")
    adi_sets = adi_arm.pop("_sets")
    identical_coverage = base_sets[1] == adi_sets[1]
    if not identical_coverage:
        print("ERROR: ADI ordering changed the final fault coverage",
              file=sys.stderr)
    fewer_passes = (adi_arm["counters"]["detect_passes"]
                    < baseline["counters"]["detect_passes"])
    cycles_le = (adi_arm["result"]["cycles"]
                 <= baseline["result"]["cycles"])
    return {
        "bench": "adi: accidental-detection-index ordering vs the "
                 "plain proposed procedure",
        "circuit": _circuit_block(profile, netlist, faults, comb, t0),
        "config": {
            "quick": quick,
            "seed": seed,
            "engine": engine,
            "adi_census_size": len(comb.adi),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": _numpy_version(),
        },
        "baseline": baseline,
        "adi": adi_arm,
        "detect_passes": {
            "baseline": baseline["counters"]["detect_passes"],
            "adi": adi_arm["counters"]["detect_passes"],
        },
        "cycles": {"baseline": baseline["result"]["cycles"],
                   "adi": adi_arm["result"]["cycles"]},
        "identical_coverage": identical_coverage,
        "fewer_detect_passes": fewer_passes,
        "cycles_le_baseline": cycles_le,
    }


def _power_run(profile, strategy: Optional[str], seed: int):
    """One proposed-procedure run (random ``T0`` arm) on a suite
    circuit; ``strategy=None`` means *default parameters* -- the
    baseline the explicit ``random`` run must reproduce exactly."""
    from repro import api
    netlist = profile.build()
    wb = api.Workbench.for_netlist(netlist)
    kwargs = {} if strategy is None else {"x_fill": strategy}
    result = api.compact_tests(netlist, seed=seed, t0_source="random",
                               t0_length=min(profile.t0_length, 300),
                               workbench=wb, **kwargs)
    final = result.compacted_set or result.test_set
    engine = ActivityEngine(wb.circuit, wb.counters)
    summary = engine.set_power(final).summary()
    fingerprint = (frozenset(result.final_detected),
                   final.clock_cycles(), tuple(final.tests))
    return summary, fingerprint, len(result.final_detected)


def build_power_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    """The ``--power`` payload: X-fill strategies over the quick suite.

    ``quick`` is accepted for CLI symmetry but the sweep always runs
    the quick suite -- it is already CI-sized.
    """
    from repro.circuits import suite as suite_mod
    from repro.sim.values import FILL_STRATEGIES

    profiles = suite_mod.quick_suite()
    circuits: Dict[str, Dict[str, Any]] = {}
    identical_detection = True
    for profile in profiles:
        print(f"{profile.name}: default-parameter baseline ...",
              flush=True)
        _, default_fp, _ = _power_run(profile, None, seed)
        per_strategy: Dict[str, Any] = {}
        for strategy in FILL_STRATEGIES:
            print(f"{profile.name}: x-fill {strategy} ...", flush=True)
            summary, fp, detected = _power_run(profile, strategy, seed)
            if strategy == "random" and fp != default_fp:
                identical_detection = False
                print(f"ERROR: {profile.name}: explicit random fill "
                      f"differs from the default-parameter run",
                      file=sys.stderr)
            entry = summary.as_dict()
            entry["detected"] = detected
            per_strategy[strategy] = entry
        circuits[profile.name] = per_strategy
    return {
        "bench": "power: X-fill strategies' shift WTM / capture "
                 "toggles on the quick suite",
        "config": {
            "quick": quick,
            "seed": seed,
            "strategies": list(FILL_STRATEGIES),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "circuits": circuits,
        "identical_detection": identical_detection,
    }


def _delay_sets(netlist, comb, t0):
    """The final test sets a ``--delay`` campaign grades.

    One default proposed-procedure run (the long-sequence arm) plus
    the [4]-style static compaction of the single-vector scan set --
    the same proposed-vs-baseline4 pair the Delay paper table shows.
    """
    circuit = CompiledCircuit(netlist)
    faults = FaultSet.collapsed(netlist)
    sim = FaultSimulator(circuit, faults, width="auto")
    comb_sim = CombPatternSim(circuit, faults)
    result = run_proposed(sim, comb_sim, t0, comb.tests)
    proposed = result.compacted_set or result.test_set
    initial = ScanTestSet(
        len(circuit.ff_ids),
        [single_vector_test(t.state, t.pi) for t in comb.tests])
    baseline = static_compact(sim, initial).test_set
    return circuit, {"proposed": proposed, "baseline4": baseline}


def _run_delay_route(circuit, sets, route: str,
                     repeats: int = 3) -> Dict[str, Any]:
    """One full TDF + clock-cost measurement under one route.

    Best wall clock of ``repeats`` identical measurements -- the TDF
    pass is sub-second, so a single sample is too noisy to gate on.
    """
    best = None
    report = None
    for _ in range(repeats):
        counters = SimCounters()
        tsim = TransitionSim(circuit, counters=counters, route=route)
        started = time.perf_counter()
        report = measure_delay(tsim, sets)
        seconds = time.perf_counter() - started
        if best is None or seconds < best[0]:
            best = (seconds, counters)
    seconds, counters = best
    return {
        "route": route,
        "seconds": round(seconds, 3),
        "repeats": repeats,
        "tdf_passes": counters.tdf_passes,
        "tdf_words": counters.tdf_words,
        "detected": {label: summary.detected
                     for label, summary in report.sets.items()},
        "report": report.as_dict(),
    }


def build_delay_payload(quick: bool, seed: int = 1) -> Dict[str, Any]:
    """The ``--delay`` payload: packed vs scalar TDF simulation.

    Builds the profile circuit's final test sets once (proposed run +
    [4] baseline), then grades them twice with
    :class:`repro.delay.transition.TransitionSim` -- the scalar
    big-int route and the wide-word packed route (uint64 arrays + the
    C pass kernel) -- asserting identical per-set coverage and
    reporting the wall-clock speedup the CI gate checks.  The packed
    arm is skipped (recorded as ``null`` with a visible notice) when
    numpy or the kernel is unavailable.
    """
    profile, netlist, faults, comb, t0 = _trials_circuit(quick, seed)
    circuit, sets = _delay_sets(netlist, comb, t0)
    tdf_faults = len(TransitionSim(circuit, route="scalar").faults)
    for label, test_set in sorted(sets.items()):
        print(f"set {label}: {len(test_set)} tests, "
              f"{test_set.clock_cycles()} cycles, "
              f"{test_set.at_speed_pairs()} at-speed pairs")

    print(f"scalar: {tdf_faults} transition faults ...", flush=True)
    scalar = _run_delay_route(circuit, sets, "scalar")
    print(f"  {scalar['seconds']}s ({scalar['tdf_passes']} passes)")
    packed = None
    if npsim.numpy_available() and \
            npsim.kernel_unavailable_reason() is None:
        print("packed: wide-word route ...", flush=True)
        packed = _run_delay_route(circuit, sets, "packed")
        print(f"  {packed['seconds']}s ({packed['tdf_passes']} passes)")
    else:
        print("NOTICE: packed TDF arm skipped (numpy or the C pass "
              "kernel is unavailable); scalar route only")

    identical = (packed is None
                 or scalar["detected"] == packed["detected"])
    if not identical:
        print("ERROR: packed and scalar TDF routes disagree on "
              "coverage", file=sys.stderr)
    speedup = (None if packed is None else
               round(scalar["seconds"] / max(packed["seconds"], 1e-9),
                     2))
    report = (packed or scalar).pop("report")
    if packed is not None:
        scalar.pop("report")
    return {
        "bench": "delay: wide-word packed TDF simulation vs the "
                 "scalar big-int route",
        "circuit": dict(_circuit_block(profile, netlist, faults, comb,
                                       t0), tdf_faults=tdf_faults),
        "config": {
            "quick": quick,
            "seed": seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": _numpy_version(),
            "np_kernel": (npsim.kernel_unavailable_reason() is None
                          if npsim.numpy_available() else False),
        },
        "scalar": scalar,
        "packed": packed,
        "report": report,
        "speedup": speedup,
        "identical_coverage": identical,
    }


def _delay_gate(payload: Dict[str, Any], ratio: float) -> bool:
    """The packed route must be at least ``ratio`` x faster.

    Returns True (with a visible notice) instead of failing when the
    packed arm could not run -- numpy missing or no C compiler for
    the pass kernel -- mirroring :func:`_numpy_gate`.
    """
    if payload["packed"] is None:
        print("DELAY GATE SKIPPED: packed TDF route unavailable "
              "(numpy or the C pass kernel is missing)")
        return True
    achieved = payload["speedup"]
    if achieved < ratio:
        print(f"DELAY GATE FAILED: packed TDF route is x{achieved:.2f} "
              f"faster than scalar, need x{ratio:g}", file=sys.stderr)
        return False
    print(f"delay gate ok: x{achieved:.2f} >= x{ratio:g}")
    return True


def _power_gate(payload: Dict[str, Any], ratio: float) -> bool:
    """Per circuit: adjacent peak shift WTM <= ratio x random's."""
    ok = True
    for name, per_strategy in sorted(payload["circuits"].items()):
        random_peak = per_strategy["random"]["peak_shift_wtm"]
        adjacent_peak = per_strategy["adjacent"]["peak_shift_wtm"]
        if adjacent_peak > ratio * random_peak:
            print(f"POWER GATE FAILED: {name}: adjacent peak WTM "
                  f"{adjacent_peak} > {ratio:g} x random "
                  f"{random_peak}", file=sys.stderr)
            ok = False
        else:
            print(f"power gate ok: {name}: adjacent {adjacent_peak} "
                  f"<= {ratio:g} x random {random_peak}")
    return ok


def _numpy_gate(bigint_row: Dict[str, Any],
                numpy_row: Optional[Dict[str, Any]],
                ratio: float, config: Dict[str, Any]) -> bool:
    """The numpy arm must be at least ``ratio`` x faster than big-int.

    Returns True (with a visible notice) instead of failing when the
    numpy arm could not run at full speed: numpy missing, or no C
    compiler for the pass kernel (the pure-numpy fallback is a
    portability path, not a fast path).
    """
    if numpy_row is None:
        print("NUMPY GATE SKIPPED: numpy is not installed "
              "(pip install repro[fast])")
        return True
    if not config.get("np_kernel"):
        print("NUMPY GATE SKIPPED: no C compiler for the pass kernel; "
              "only the pure-numpy fallback ran")
        return True
    achieved = bigint_row["seconds"] / max(numpy_row["seconds"], 1e-9)
    if achieved < ratio:
        print(f"NUMPY GATE FAILED: numpy is x{achieved:.2f} faster "
              f"than the fused big-int engine, need x{ratio:g}",
              file=sys.stderr)
        return False
    print(f"numpy gate ok: x{achieved:.2f} >= x{ratio:g}")
    return True


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized circuit instead of the full one")
    parser.add_argument("--phase1", action="store_true",
                        help="benchmark the Phase-1 candidate scan "
                             "(lanes vs scalar) instead of the engine")
    parser.add_argument("--engine-matrix", action="store_true",
                        help="time one detect pass per engine "
                             "(interp/codegen/numpy) on the same "
                             "circuit instead of the full pipeline")
    parser.add_argument("--power", action="store_true",
                        help="sweep the X-fill strategies' power on "
                             "the quick suite instead of the engine")
    parser.add_argument("--trials", action="store_true",
                        help="benchmark the lane-batched Phase-3/4 "
                             "trial engine vs the scalar loops")
    parser.add_argument("--adi", action="store_true",
                        help="compare ADI-guided ordering against the "
                             "plain proposed procedure (quality gate)")
    parser.add_argument("--delay", action="store_true",
                        help="benchmark the wide-word packed "
                             "transition-fault route vs the scalar "
                             "route on the final test sets")
    parser.add_argument("--collapse", action="store_true",
                        help="compare representative-only simulation "
                             "(+ untestability proofs) against the "
                             "uncollapsed flow (quality gate)")
    parser.add_argument("--gate", type=float, metavar="RATIO",
                        help="fail (exit 1) when the after/lanes wall "
                             "clock exceeds RATIO x before/scalar")
    parser.add_argument("--gate-numpy", type=float, metavar="RATIO",
                        help="fail (exit 1) when the numpy arm is "
                             "less than RATIO x faster than the fused "
                             "big-int arm (skipped, with a notice, "
                             "when numpy or a C compiler is missing)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("-o", "--out", default=None)
    args = parser.parse_args(argv)

    if args.delay:
        out = args.out or "BENCH_delay.json"
        payload = build_delay_payload(quick=args.quick, seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        speedup = payload["speedup"]
        print(f"wrote {out}: packed TDF speedup "
              f"x{speedup if speedup is not None else '-'} "
              f"(identical coverage: {payload['identical_coverage']})")
        if not payload["identical_coverage"]:
            return 1
        if args.gate is not None and not _delay_gate(payload,
                                                     args.gate):
            return 1
        return 0

    if args.trials:
        out = args.out or "BENCH_trials.json"
        payload = build_trials_payload(quick=args.quick, seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}: phase-3/4 trial speedup "
              f"x{payload['speedup']} (identical results: "
              f"{payload['identical_results']})")
        if not payload["identical_results"]:
            return 1
        if args.gate is not None:
            ratio = (payload["trial_seconds"]["batched"]
                     / max(payload["trial_seconds"]["scalar"], 1e-9))
            if ratio > args.gate:
                print(f"PERF GATE FAILED: batched/scalar trial time "
                      f"= {ratio:.2f} > {args.gate}", file=sys.stderr)
                return 1
            print(f"perf gate ok: batched/scalar trial time "
                  f"= {ratio:.2f} <= {args.gate}")
        return 0

    if args.collapse:
        out = args.out or "BENCH_collapse.json"
        payload = build_collapse_payload(quick=args.quick,
                                         seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        fs = payload["fault_space"]
        print(f"wrote {out}: {fs['n_universe']} faults -> "
              f"{fs['n_classes']} classes "
              f"({fs['n_untestable']} untestable), comb passes "
              f"{payload['comb_passes']['uncollapsed']} -> "
              f"{payload['comb_passes']['collapsed']} "
              f"(identical results: {payload['identical_results']})")
        if not payload["identical_results"]:
            return 1
        if args.gate is not None:
            ok = True
            if (payload["comb_passes"]["collapsed"]
                    >= payload["comb_passes"]["uncollapsed"]):
                print("COLLAPSE GATE FAILED: no reduction in per-fault "
                      "comb passes", file=sys.stderr)
                ok = False
            if (payload["machines"]["collapsed"]
                    >= payload["machines"]["uncollapsed"]):
                print("COLLAPSE GATE FAILED: no reduction in simulated "
                      "machine bits", file=sys.stderr)
                ok = False
            if not ok:
                return 1
            print("collapse gate ok: fewer comb passes and machine "
                  "bits, identical results")
        return 0

    if args.adi:
        out = args.out or "BENCH_adi.json"
        payload = build_adi_payload(quick=args.quick, seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}: detect passes "
              f"{payload['detect_passes']['baseline']} -> "
              f"{payload['detect_passes']['adi']}, cycles "
              f"{payload['cycles']['baseline']} -> "
              f"{payload['cycles']['adi']} (identical coverage: "
              f"{payload['identical_coverage']})")
        if not payload["identical_coverage"]:
            return 1
        if args.gate is not None:
            ok = True
            if not payload["fewer_detect_passes"]:
                print("ADI GATE FAILED: no reduction in detect passes",
                      file=sys.stderr)
                ok = False
            if not payload["cycles_le_baseline"]:
                print("ADI GATE FAILED: final cycles exceed the "
                      "baseline", file=sys.stderr)
                ok = False
            if not ok:
                return 1
            print("adi gate ok: fewer detect passes, cycles <= "
                  "baseline, identical coverage")
        return 0

    if args.power:
        out = args.out or "BENCH_power.json"
        payload = build_power_payload(quick=args.quick, seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}: {len(payload['circuits'])} circuit(s), "
              f"{len(payload['config']['strategies'])} strategies "
              f"(identical detection: "
              f"{payload['identical_detection']})")
        if not payload["identical_detection"]:
            return 1
        if args.gate is not None and not _power_gate(payload, args.gate):
            return 1
        return 0

    if args.engine_matrix:
        out = args.out or "BENCH_engine_matrix.json"
        payload = build_engine_matrix_payload(quick=args.quick,
                                              seed=args.seed)
        atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out} (identical results: "
              f"{payload['identical_results']})")
        if not payload["identical_results"]:
            return 1
        if args.gate_numpy is not None:
            return 0 if _numpy_gate(payload["engines"]["codegen"],
                                    payload["engines"]["numpy"],
                                    args.gate_numpy,
                                    payload["config"]) else 1
        return 0

    if args.phase1:
        out = args.out or "BENCH_phase1.json"
        payload = build_phase1_payload(quick=args.quick, seed=args.seed)
        gate_pair = (payload["select_scan_in"]["lanes"]["seconds"],
                     payload["select_scan_in"]["scalar"]["seconds"])
        gate_label = "lanes/scalar"
    else:
        out = args.out or "BENCH_engine.json"
        payload = build_payload(quick=args.quick, seed=args.seed)
        gate_pair = (payload["after"]["seconds"],
                     payload["before"]["seconds"])
        gate_label = "fused/chunked"

    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}: speedup x{payload['speedup']} "
          f"(identical results: {payload['identical_results']})")

    if not payload["identical_results"]:
        return 1
    if args.gate is not None:
        ratio = gate_pair[0] / max(gate_pair[1], 1e-9)
        if ratio > args.gate:
            print(f"PERF GATE FAILED: {gate_label} = {ratio:.2f} "
                  f"> {args.gate}", file=sys.stderr)
            return 1
        print(f"perf gate ok: {gate_label} = {ratio:.2f} "
              f"<= {args.gate}")
    if args.gate_numpy is not None and not args.phase1:
        if not _numpy_gate(payload["after"], payload.get("numpy"),
                           args.gate_numpy, payload["config"]):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
